// Package releasecheck enforces the Delivery ownership contract from the
// kernel package docs: every *kernel.Delivery obtained from a receive call
// (Recv, RecvCtx, TryRecv, Select, Mailbox.Drain) must reach Release or
// Detach on every control-flow path — the payload-pool leak class that PR 6
// hand-audited out of cmd/ and the service loops.
package releasecheck

import (
	"go/ast"
	"go/types"

	"asbestos/internal/analyzers/analysis"
	"asbestos/internal/analyzers/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "releasecheck",
	Doc: `enforce Release/Detach on every path for received deliveries

Every *kernel.Delivery returned by Recv/RecvCtx/TryRecv/Select or yielded
by Mailbox.Drain borrows a pooled payload buffer; kernel.Delivery's docs
make Release (or Detach, which takes ownership) mandatory on all paths.
This analyzer tracks each receive through the function's control flow and
flags paths — early returns, error branches, reassignment, loop back
edges — on which the delivery can escape unreleased. Sanctioned
discharges: Release, Detach, returning the delivery, storing it in a
field/global/channel (ownership transfer), passing it to a func value
(handler/yield), or passing it to a same-package function that provably
releases it on every path.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	summaries := releaseSummaries(pass)
	for _, file := range pass.Files {
		if len(file.Decls) > 0 && pass.InTestFile(file.Pos()) {
			continue
		}
		for _, unit := range analysis.FuncUnits(file) {
			checkUnit(pass, unit, summaries)
		}
	}
	return nil
}

// recvName is the syntactic allow-list: a call is a receive only if it is
// named like one AND its first result is *kernel.Delivery, so helper
// functions returning deliveries (ownership transfers by construction) are
// not treated as acquisitions.
func recvName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func isRecvCall(info *types.Info, call *ast.CallExpr) bool {
	switch recvName(call) {
	case "Recv", "RecvCtx", "TryRecv", "Select":
	default:
		return false
	}
	return analysis.FirstResultIs(info, call, analysis.IsDeliveryPtr)
}

func isDrainCall(info *types.Info, call *ast.CallExpr) bool {
	return recvName(call) == "Drain" &&
		analysis.MethodOn(info, call, "internal/kernel", "Mailbox", "Drain")
}

// releaseSummaries computes, per same-package function, which
// *kernel.Delivery parameters are released/detached on every path — so
// passing a delivery to e.g. a dispatchRelease-style helper counts as a
// discharge at the call site.
func releaseSummaries(pass *analysis.Pass) map[*types.Func][]bool {
	sums := make(map[*types.Func][]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			params := analysis.ParamObjs(pass.TypesInfo, fd)
			var flags []bool
			any := false
			for _, p := range params {
				if p == nil || !analysis.IsDeliveryPtr(p.Type()) {
					flags = append(flags, false)
					continue
				}
				t := &flow.Tracker{
					Info:    pass.TypesInfo,
					Res:     flow.Resource{Obj: p},
					Nilable: true,
					Satisfies: func(call *ast.CallExpr) bool {
						return releasesRes(pass.TypesInfo, call, flow.Resource{Obj: p})
					},
					EscapeDischarges:      true,
					ReturnDischarges:      true,
					DynamicCallDischarges: true,
				}
				ok := len(t.Check(fd.Body)) == 0
				flags = append(flags, ok)
				any = any || ok
			}
			if any {
				sums[fn] = flags
			}
		}
	}
	return sums
}

// releasesRes reports whether call is res.Release() or res.Detach().
func releasesRes(info *types.Info, call *ast.CallExpr, res flow.Resource) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Release" && sel.Sel.Name != "Detach" {
		return false
	}
	return flow.MatchResource(info, res, sel.X)
}

func checkUnit(pass *analysis.Pass, unit analysis.FuncUnit, sums map[*types.Func][]bool) {
	info := pass.TypesInfo
	analysis.InspectUnit(unit.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isRecvCall(info, call) {
				pass.Reportf(call.Pos(), "result of %s discarded: the *kernel.Delivery must reach Release or Detach", recvName(call))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isRecvCall(info, call) {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				// Stored straight into a field/element: ownership
				// transferred at acquisition.
				return
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "result of %s discarded: the *kernel.Delivery must reach Release or Detach", recvName(call))
				return
			}
			obj := objOf(info, id)
			if obj == nil {
				return
			}
			track(pass, unit, sums, flow.Resource{Obj: obj}, errObj(info, n.Lhs), n, recvName(call))
		case *ast.RangeStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok || !isDrainCall(info, call) {
				return
			}
			id, ok := n.Key.(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(n.Pos(), "delivery yielded by Drain ignored: each *kernel.Delivery must reach Release or Detach")
				return
			}
			obj := objOf(info, id)
			if obj == nil {
				return
			}
			track(pass, unit, sums, flow.Resource{Obj: obj}, nil, n, "Drain")
		}
	})
}

// errObj returns the companion error variable of the acquiring assignment
// (the last ident whose type is error), for `err != nil` guard pruning.
func errObj(info *types.Info, lhs []ast.Expr) types.Object {
	for i := len(lhs) - 1; i > 0; i-- {
		id, ok := lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objOf(info, id)
		if obj != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
			return obj
		}
	}
	return nil
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

func track(pass *analysis.Pass, unit analysis.FuncUnit, sums map[*types.Func][]bool,
	res flow.Resource, err types.Object, start ast.Node, via string) {
	info := pass.TypesInfo
	t := &flow.Tracker{
		Info:    info,
		Res:     res,
		Err:     err,
		Nilable: true,
		Start:   start,
		Satisfies: func(call *ast.CallExpr) bool {
			if releasesRes(info, call, res) {
				return true
			}
			return analysis.CalleeDischargesArg(info, call, sums, func(e ast.Expr) bool {
				return flow.MatchResource(info, res, e)
			})
		},
		EscapeDischarges:      true,
		ReturnDischarges:      true,
		DynamicCallDischarges: true,
	}
	for _, leak := range t.Check(unit.Body) {
		pass.Reportf(leak.Pos, "delivery %q from %s may not be released on this path (%s): every *kernel.Delivery must reach Release or Detach", res.Obj.Name(), via, leak.Reason)
	}
}
