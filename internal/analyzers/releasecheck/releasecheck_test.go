package releasecheck_test

import (
	"testing"

	"asbestos/internal/analyzers/analysistest"
	"asbestos/internal/analyzers/releasecheck"
)

func TestReleasecheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), releasecheck.Analyzer, "releasecheck_a")
}
