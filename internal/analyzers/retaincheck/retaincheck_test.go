package retaincheck_test

import (
	"testing"

	"asbestos/internal/analyzers/analysistest"
	"asbestos/internal/analyzers/retaincheck"
)

func TestRetaincheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), retaincheck.Analyzer, "retaincheck_a")
}
