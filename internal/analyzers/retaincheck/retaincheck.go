// Package retaincheck enforces the evloop handler no-retain contract: a
// handler registered with Shard.Handle/HandleForward/HandleDefault borrows
// its *kernel.Delivery only for the duration of the call — the loop
// releases the payload the moment the handler returns. Letting d or d.Data
// escape the handler (into a field, global, captured variable, channel or
// goroutine) is a use-after-release bug; Detach() and byte copies are the
// sanctioned escapes.
package retaincheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"asbestos/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "retaincheck",
	Doc: `forbid evloop handlers from retaining the delivery or its payload

The evloop package doc makes handler payloads borrowed: the shard calls
d.Release() right after the handler returns, recycling d.Data's buffer.
This analyzer resolves the handler function at every
Handle/HandleForward/HandleDefault registration (function literals, named
functions and method values) and flags statements that let the delivery or
an alias of d.Data outlive the call: assignment into a field, element,
global or captured variable; a channel send; or capture by a go statement.
Sanctioned: d.Detach() (transfers buffer ownership and returns a slice the
pool no longer owns), copies (string conversion, append onto a fresh
slice), and values derived by parsing rather than aliasing.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Index declared functions so ident/method-value handler registrations
	// resolve to bodies.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	checked := map[ast.Node]bool{}
	for _, file := range pass.Files {
		if len(file.Decls) > 0 && pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRegistration(info, call) || len(call.Args) == 0 {
				return true
			}
			h := ast.Unparen(call.Args[len(call.Args)-1])
			// Unwrap an evloop.Handler(f) conversion.
			if conv, ok := h.(*ast.CallExpr); ok && len(conv.Args) == 1 {
				if tv, ok := info.Types[conv.Fun]; ok && tv.IsType() {
					h = ast.Unparen(conv.Args[0])
				}
			}
			switch h := h.(type) {
			case *ast.FuncLit:
				if !checked[h] {
					checked[h] = true
					checkHandler(pass, h, h.Body, h.Type)
				}
			case *ast.Ident, *ast.SelectorExpr:
				fn := handlerFunc(info, h)
				if fd := decls[fn]; fd != nil && !checked[fd] {
					checked[fd] = true
					checkHandler(pass, fd, fd.Body, fd.Type)
				}
			}
			return true
		})
	}
	return nil
}

func isRegistration(info *types.Info, call *ast.CallExpr) bool {
	for _, name := range []string{"Handle", "HandleForward", "HandleDefault"} {
		if analysis.MethodOn(info, call, "internal/evloop", "Shard", name) {
			return true
		}
	}
	return false
}

func handlerFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkHandler analyzes one handler body. node is the handler's syntax
// (FuncDecl or FuncLit) — identifiers declared outside it are captured.
func checkHandler(pass *analysis.Pass, node ast.Node, body *ast.BlockStmt, ftype *ast.FuncType) {
	info := pass.TypesInfo

	// The delivery parameter.
	var dObj types.Object
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil && analysis.IsDeliveryPtr(obj.Type()) {
					dObj = obj
				}
			}
		}
	}
	if dObj == nil {
		return
	}

	c := &checker{pass: pass, info: info, node: node, aliases: map[types.Object]bool{dObj: true}}

	// Seed aliases in source order: locals assigned from d, d.Data or a
	// subslice of an alias. One forward pass is enough for the
	// straight-line aliasing these handlers use.
	analysis.InspectUnit(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if c.retains(as.Rhs[i]) {
				if obj := info.Defs[id]; obj != nil {
					c.aliases[obj] = true
				}
			}
		}
	})

	analysis.InspectUnit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil || !c.retains(rhs) {
					continue
				}
				if why := c.escapeTarget(lhs); why != "" {
					c.report(n.Pos(), why)
				}
			}
		case *ast.SendStmt:
			if c.retains(n.Value) {
				c.report(n.Pos(), "sent on a channel")
			}
		case *ast.GoStmt:
			if c.mentionsAlias(n.Call) {
				c.report(n.Pos(), "captured by a go statement")
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if c.retains(e) {
					c.report(n.Pos(), "returned from the handler")
				}
			}
		}
	})
	return
}

type checker struct {
	pass    *analysis.Pass
	info    *types.Info
	node    ast.Node
	aliases map[types.Object]bool
}

func (c *checker) report(pos token.Pos, how string) {
	c.pass.Reportf(pos, "handler lets the delivery payload escape (%s): the evloop releases it when the handler returns — Detach() or copy instead", how)
}

// isAlias reports whether e denotes the delivery or a payload alias:
// the tracked ident, d.Data / alias.Data, or a slice of an alias.
func (c *checker) isAlias(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		return obj != nil && c.aliases[obj]
	case *ast.SelectorExpr:
		return e.Sel.Name == "Data" && c.isAlias(e.X)
	case *ast.SliceExpr:
		return c.isAlias(e.X)
	}
	return false
}

// retains reports whether evaluating e yields a value sharing the payload
// buffer: an alias reachable without crossing a copying boundary. A
// string(...) conversion copies; append(fresh, alias...) copies the bytes;
// append(alias, ...) retains the base array; any other call is a parse
// boundary and treated as non-retaining (the callee is responsible).
func (c *checker) retains(e ast.Expr) bool {
	e = ast.Unparen(e)
	if c.isAlias(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if tv, ok := c.info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: string(d.Data) copies; []byte(x)/Handler(x)
			// keep the underlying value.
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.String {
				return false
			}
			if len(e.Args) == 1 {
				return c.retains(e.Args[0])
			}
			return false
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return c.retains(e.Args[0]) // appending ONTO an alias retains it
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.retains(el) {
				return true
			}
		}
	case *ast.UnaryExpr:
		return c.retains(e.X)
	case *ast.IndexExpr:
		return false // a single byte is a copy
	}
	return false
}

// mentionsAlias reports whether any alias ident occurs under n (for go
// statements, where capture alone is the bug).
func (c *checker) mentionsAlias(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok && c.isAlias(e) {
			found = true
		}
		return !found
	})
	return found
}

// escapeTarget classifies an assignment LHS that outlives the handler
// call: a field/element/deref, a package-level variable, or an identifier
// declared outside the handler (captured from the enclosing function).
func (c *checker) escapeTarget(lhs ast.Expr) string {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "stored in a field"
	case *ast.IndexExpr:
		return "stored in an element"
	case *ast.StarExpr:
		return "stored through a pointer"
	case *ast.Ident:
		obj := c.info.Defs[l]
		if obj != nil {
			return "" // fresh local
		}
		obj = c.info.Uses[l]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return "stored in a package-level variable"
			}
			if v.Pos() < c.node.Pos() || v.Pos() > c.node.End() {
				return "stored in a variable captured from the enclosing function"
			}
		}
	}
	return ""
}
