package ctxrecv_test

import (
	"testing"

	"asbestos/internal/analyzers/analysistest"
	"asbestos/internal/analyzers/ctxrecv"
)

func TestCtxrecv(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxrecv.Analyzer, "ctxrecv_a")
}
