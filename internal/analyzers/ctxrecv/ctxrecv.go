// Package ctxrecv enforces ctx-aware blocking receives: every
// Port.Recv/Mailbox.Recv/Process.RecvCtx/Select call must be handed a
// context that can actually end the wait. Passing context.Background() (or
// TODO()) makes the receive a wedge-forever path invisible to the timer
// wheel's deadline ladder.
package ctxrecv

import (
	"go/ast"
	"go/types"

	"asbestos/internal/analyzers/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxrecv",
	Doc: `require cancellable contexts on blocking kernel receives

The kernel's blocking receives (Port.Recv, Mailbox.Recv, Process.RecvCtx,
Select) take the context that bounds the wait; the evloop deadline ladder
and every service shutdown path rely on it. A receive given a bare
context.Background()/context.TODO() — directly, or via a variable assigned
nothing else — can never be cancelled and wedges its goroutine forever.
Thread the caller's context, or derive one with WithTimeout/WithCancel.
Test files are exempt (the test binary's deadline bounds them).`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if len(file.Decls) > 0 && pass.InTestFile(file.Pos()) {
			continue
		}
		for _, unit := range analysis.FuncUnits(file) {
			analysis.InspectUnit(unit.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isBlockingRecv(info, call) || len(call.Args) == 0 {
					return
				}
				ctxArg := ast.Unparen(call.Args[0])
				if bare, name := bareContext(info, unit, ctxArg); bare {
					pass.Reportf(call.Pos(), "blocking %s with context.%s(): the wait can never be cancelled — thread the caller's ctx or derive one with WithTimeout/WithCancel", recvName(call), name)
				}
			})
		}
	}
	return nil
}

func recvName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// isBlockingRecv matches the kernel's blocking receive family, including
// Select through the facade's func variable (name + *kernel.Delivery first
// result).
func isBlockingRecv(info *types.Info, call *ast.CallExpr) bool {
	switch {
	case analysis.MethodOn(info, call, "internal/kernel", "Port", "Recv"),
		analysis.MethodOn(info, call, "internal/kernel", "Mailbox", "Recv"),
		analysis.MethodOn(info, call, "internal/kernel", "Process", "RecvCtx"),
		analysis.PkgFunc(info, call, "internal/kernel", "Select"):
		return true
	}
	if recvName(call) == "Select" {
		return analysis.FirstResultIs(info, call, analysis.IsDeliveryPtr)
	}
	return false
}

// bareContext reports whether e is context.Background()/TODO() — written
// directly, or an identifier whose every defining assignment in the unit
// is such a call.
func bareContext(info *types.Info, unit analysis.FuncUnit, e ast.Expr) (bool, string) {
	if call, ok := e.(*ast.CallExpr); ok {
		return bareContextCall(info, call)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false, ""
	}
	obj := info.Uses[id]
	if obj == nil {
		return false, ""
	}
	name := ""
	found := false
	allBare := true
	analysis.InspectUnit(unit.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, l := range as.Lhs {
			lid, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			lobj := info.Defs[lid]
			if lobj == nil {
				lobj = info.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			found = true
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				allBare = false
				continue
			}
			bare, n := bareContextCall(info, call)
			if !bare {
				allBare = false
			} else {
				name = n
			}
		}
	})
	return found && allBare, name
}

func bareContextCall(info *types.Info, call *ast.CallExpr) (bool, string) {
	for _, name := range []string{"Background", "TODO"} {
		if analysis.PkgFunc(info, call, "context", name) {
			return true, name
		}
	}
	return false, ""
}
