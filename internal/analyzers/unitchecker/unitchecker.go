// Package unitchecker drives the asbestosvet analyzers under `go vet
// -vettool`, speaking the (unpublished but stable) vet command-line
// protocol that cmd/go expects of an analysis tool — the same contract
// golang.org/x/tools/go/analysis/unitchecker implements, restated here on
// the standard library alone:
//
//   - `tool -flags` prints the tool's analyzer flags as JSON (ours: none).
//   - `tool -V=full` prints "name version v..." for the build cache key.
//   - `tool <dir>/vet.cfg` analyzes one package: the JSON config carries
//     the file list plus an import→export-data map, the tool type-checks
//     against the compiler's export data and prints findings to stderr,
//     exiting 2 if there were any.
//
// cmd/go invokes the tool once per package in the build graph; dependency
// invocations arrive with VetxOnly set (they exist only to produce
// cross-package facts, which this suite does not use) and return
// immediately, so vetting the whole tree costs one type-check per package
// actually named on the command line.
//
// Invoked with package patterns instead of a .cfg file, the tool re-execs
// itself through `go vet -vettool=<self> <patterns>`, so
// `asbestosvet ./...` works directly.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"

	"asbestos/internal/analyzers/analysis"
)

// Config mirrors cmd/go's vetConfig (work.buildVetConfig); only the fields
// this driver consumes are listed, but unknown JSON keys are ignored so the
// struct tracks the real one loosely.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// Version is what -V=full reports, alongside a hash of the tool binary
// itself; cmd/go hashes the line into the vet cache key, so any rebuild
// with changed analyzer behaviour invalidates cached clean verdicts.
const Version = "v8.0"

// selfID returns a content hash of the running executable, or "unknown"
// when the binary cannot be read (the cache is merely less precise then).
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// Main is the tool entry point: dispatch on the protocol argument forms.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "asbestosvet"
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		fmt.Printf("%s version %s sha256=%s\n", progname, Version, selfID())
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
	case len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help"):
		fmt.Printf("%s: the asbestos kernel-invariant analyzer suite\n\n", progname)
		fmt.Printf("usage: %s package... (or via go vet -vettool=%s)\n\nAnalyzers:\n", progname, progname)
		for _, a := range analyzers {
			fmt.Printf("\n# %s\n\n%s\n", a.Name, a.Doc)
		}
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		if err := runUnit(args[0], analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
	default:
		// Package-pattern mode: delegate the build graph to go vet.
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
	}
}

func runUnit(cfgFile string, analyzers []*analysis.Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	// Always produce the vetx output cmd/go caches, even though this suite
	// computes no cross-package facts: a present-but-empty file lets the
	// driver cache dependency results instead of re-invoking us per build.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("asbestosvet\n"), 0666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil // dependency run: facts only, and we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags := RunAnalyzers(analyzers, fset, files, pkg, info)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
		os.Exit(2)
	}
	return nil
}

// typecheck type-checks the unit against the compiler's export data,
// resolving imports through the config's ImportMap/PackageFile tables —
// the stdlib gc importer accepts a lookup hook for exactly this.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// NewInfo allocates the full set of type-info maps the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers applies every analyzer to the package and returns the
// combined diagnostics in file/position order, deduplicated. Shared by the
// vet driver and the in-process test harness.
func RunAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet,
	files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pos:      token.NoPos,
				Message:  fmt.Sprintf("analyzer %s failed: %v", a.Name, err),
				Analyzer: a.Name,
			})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	var last analysis.Diagnostic
	for i, d := range diags {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}
