package privdrop_test

import (
	"testing"

	"asbestos/internal/analyzers/analysistest"
	"asbestos/internal/analyzers/privdrop"
)

func TestPrivdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), privdrop.Analyzer, "privdrop_a")
}
