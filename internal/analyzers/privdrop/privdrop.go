// Package privdrop enforces the ⋆-privilege hygiene rule from the kernel
// package docs: a capability grant (kernel.Grant hands out ⋆ for a handle)
// must be paired with DropPrivilege/DropAfter on every path in the same
// function, stored for a later recorded drop, or explicitly waived with a
// //asbestos:keepstar comment stating why the ⋆ is long-lived — the PR 6
// reply-capability leak class.
package privdrop

import (
	"go/ast"
	"go/types"

	"asbestos/internal/analyzers/analysis"
	"asbestos/internal/analyzers/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "privdrop",
	Doc: `pair every star-level grant with a DropPrivilege on all paths

kernel.Grant(h) builds a DecontSend label carrying ⋆ for h: once sent, the
recipient holds a capability the granter can only revoke by dropping its
own privilege. The kernel docs therefore require transient grants (reply
capabilities above all) to reach proc.DropPrivilege(h, ...) or
batcher.DropAfter(h) on every path after the grant. This analyzer tracks
each handle passed to Grant and flags paths on which no drop happens.
Discharges: DropPrivilege/DropAfter on the handle, passing it to a
same-package function that always drops it, storing it in a
field/global/channel (a recorded deferred drop), or returning it.
Deliberately long-lived grants (bootstrap meshes, per-user taint handles)
are waived with //asbestos:keepstar <reason> on the grant line, the line
above, or the function's doc comment; the reason is mandatory.
Grants of a port's own handle (x.Handle() where x is a *kernel.Port or
*kernel.Mailbox) are registration handoffs and exempt, as are grants built
in a return statement (the caller owns the pairing) and ellipsis spreads.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	sums := dropSummaries(pass)
	for _, file := range pass.Files {
		if len(file.Decls) > 0 && pass.InTestFile(file.Pos()) {
			continue
		}
		dirs := analysis.Directives(pass.Fset, file, "keepstar")
		for _, unit := range analysis.FuncUnits(file) {
			checkUnit(pass, unit, sums, dirs)
		}
	}
	return nil
}

// isGrantCall recognizes kernel.Grant — directly, or through the facade's
// `var Grant = kernel.Grant` (a func-value call, matched by name plus
// *label.Label result).
func isGrantCall(info *types.Info, call *ast.CallExpr) bool {
	if analysis.PkgFunc(info, call, "internal/kernel", "Grant") {
		return true
	}
	name := ""
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	if name != "Grant" {
		return false
	}
	return analysis.FirstResultIs(info, call, func(t types.Type) bool {
		ptr, ok := t.(*types.Pointer)
		return ok && analysis.LabelType(ptr.Elem(), "Label")
	})
}

// isDropCall reports whether call drops ⋆ for res: DropPrivilege on a
// Process or DropAfter on a Batcher with res as the handle argument.
func isDropCall(info *types.Info, call *ast.CallExpr, res flow.Resource) bool {
	if !analysis.MethodOn(info, call, "internal/kernel", "Process", "DropPrivilege") &&
		!analysis.MethodOn(info, call, "internal/kernel", "Batcher", "DropAfter") {
		return false
	}
	return len(call.Args) > 0 && flow.MatchResource(info, res, call.Args[0])
}

// dropSummaries marks same-package functions that drop ⋆ for a
// handle-typed parameter on every path, so replyFail-style helpers count
// as the pairing at their call sites.
func dropSummaries(pass *analysis.Pass) map[*types.Func][]bool {
	sums := make(map[*types.Func][]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			params := analysis.ParamObjs(pass.TypesInfo, fd)
			var flags []bool
			any := false
			for _, p := range params {
				if p == nil || !analysis.IsHandle(p.Type()) {
					flags = append(flags, false)
					continue
				}
				res := flow.Resource{Obj: p}
				t := &flow.Tracker{
					Info: pass.TypesInfo,
					Res:  res,
					Satisfies: func(call *ast.CallExpr) bool {
						return isDropCall(pass.TypesInfo, call, res)
					},
					EscapeDischarges: true,
					ReturnDischarges: true,
				}
				ok := len(t.Check(fd.Body)) == 0
				flags = append(flags, ok)
				any = any || ok
			}
			if any {
				sums[fn] = flags
			}
		}
	}
	return sums
}

// grantSite is one trackable handle argument of one Grant call.
type grantSite struct {
	call *ast.CallExpr
	res  flow.Resource
	name string // printed form of the handle expression
}

func checkUnit(pass *analysis.Pass, unit analysis.FuncUnit, sums map[*types.Func][]bool, dirs map[int]analysis.Directive) {
	info := pass.TypesInfo

	// Collect Grant calls, remembering which sit inside a return statement
	// (the grant label is the caller's value; pairing is the caller's job).
	inReturn := map[*ast.CallExpr]bool{}
	var grants []*ast.CallExpr
	analysis.InspectUnit(unit.Body, func(n ast.Node) {
		ret, isRet := n.(*ast.ReturnStmt)
		if isRet {
			ast.Inspect(ret, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isGrantCall(info, c) {
					inReturn[c] = true
				}
				return true
			})
		}
		if c, ok := n.(*ast.CallExpr); ok && isGrantCall(info, c) {
			grants = append(grants, c)
		}
	})

	var sites []grantSite
	for _, g := range grants {
		if inReturn[g] || g.Ellipsis.IsValid() {
			continue
		}
		for _, arg := range g.Args {
			arg := ast.Unparen(arg)
			path := flow.ExprPath(arg)
			if path == "" {
				continue // calls, indexes: not a stable name to track
			}
			root := rootIdentOf(arg)
			obj := objOf(info, root)
			if obj == nil {
				continue
			}
			if ownPortHandle(info, unit, obj, arg) {
				continue
			}
			res := flow.Resource{Obj: obj}
			if _, isSel := arg.(*ast.SelectorExpr); isSel {
				res.Sel = path
			}
			sites = append(sites, grantSite{call: g, res: res, name: path})
		}
	}

	for _, site := range sites {
		site := site
		t := &flow.Tracker{
			Info:  info,
			Res:   site.res,
			Start: site.call,
			Satisfies: func(call *ast.CallExpr) bool {
				if isDropCall(info, call, site.res) {
					return true
				}
				return analysis.CalleeDischargesArg(info, call, sums, func(e ast.Expr) bool {
					return flow.MatchResource(info, site.res, e)
				})
			},
			EscapeDischarges: true,
			ReturnDischarges: true,
			EscapeExempt: func(call *ast.CallExpr) bool {
				return isGrantCall(info, call)
			},
		}
		for _, leak := range t.Check(unit.Body) {
			if d, ok := analysis.WaiverFor(pass.Fset, dirs, site.call.Pos(), unit.Decl, "keepstar"); ok {
				if d.Reason == "" {
					pass.Reportf(leak.Pos, "asbestos:keepstar waiver needs a reason")
				}
				continue
			}
			if d, ok := analysis.WaiverFor(pass.Fset, dirs, leak.Pos, nil, "keepstar"); ok {
				if d.Reason == "" {
					pass.Reportf(leak.Pos, "asbestos:keepstar waiver needs a reason")
				}
				continue
			}
			pass.Reportf(leak.Pos, "star-level grant of %s is not dropped on this path (%s): pair with DropPrivilege/DropAfter or waive with //asbestos:keepstar <reason>", site.name, leak.Reason)
		}
	}
}

// ownPortHandle exempts handles that name the process's own endpoint:
// x.Handle() receiver typed *kernel.Port / *kernel.Mailbox (directly as
// the grant argument, or an identifier defined once from such a call).
// Granting ⋆ on your own port is the registration handoff the IPC model is
// built on; it does not confer privilege over anything the sender does not
// already own outright.
func ownPortHandle(info *types.Info, unit analysis.FuncUnit, obj types.Object, arg ast.Expr) bool {
	if id, ok := arg.(*ast.Ident); ok {
		// Find the sole defining assignment of id inside this unit.
		var rhs ast.Expr
		count := 0
		analysis.InspectUnit(unit.Body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			for i, l := range as.Lhs {
				lid, ok := l.(*ast.Ident)
				if !ok || objOf(info, lid) != obj {
					continue
				}
				count++
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
			}
		})
		if count == 1 && rhs != nil {
			return isPortHandleCall(info, rhs)
		}
		_ = id
		return false
	}
	return isPortHandleCall(info, arg)
}

func isPortHandleCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.MethodOn(info, call, "internal/kernel", "Port", "Handle") ||
		analysis.MethodOn(info, call, "internal/kernel", "Mailbox", "Handle")
}

func rootIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
