// Package flow is the shared control-flow engine behind the asbestosvet
// analyzers: a structural all-paths obligation checker over Go syntax.
//
// The repo's resource contracts all have the same shape — "once X happens,
// Y must happen on every path before the function exits": a Delivery drawn
// from the payload pool must reach Release/Detach (releasecheck), a
// ⋆-grant must be paired with DropPrivilege (privdrop). Tracker encodes
// that shape once. It walks a function body as structured control flow
// (if/for/range/switch/select/defer, labeled break/continue), carrying a
// per-path obligation state, and reports every exit a live obligation can
// escape through — the "which resource escaped on which path" view a CFG
// gives, computed directly on the AST since Go's statement structure (goto
// aside; functions using goto are skipped conservatively) is already a
// reducible CFG.
//
// Path sensitivity is limited to the guards that matter for these APIs:
// `err != nil` / `res == nil` comparisons (and their &&/||/! compositions)
// kill the obligation on branches where the resource provably does not
// exist — the standard `d, err := Recv(); if err != nil { return }` prologue
// is clean without annotations.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Resource names the tracked value: a plain identifier (Obj) or a selector
// chain rooted at Obj whose printed form is Sel (e.g. "id.UT"). Selector
// resources are matched textually with the root object compared by
// identity, so distinct instances of a same-named field never alias.
type Resource struct {
	Obj types.Object
	Sel string
}

// Tracker configures one obligation check over one function body.
type Tracker struct {
	Info *types.Info
	Res  Resource

	// Err is the companion error variable from the acquiring assignment
	// (nil if none): `err != nil` branches are treated as resource-absent.
	Err types.Object
	// Nilable enables `res == nil` guard recognition (receive APIs return
	// nil deliveries; handles are values and never nil).
	Nilable bool

	// Start is the acquisition node: the obligation activates when it
	// executes. A Start inside a loop body re-activates per iteration, and
	// an obligation still live at the body's end is reported there (the
	// next iteration re-acquires over the leak). A nil Start means the
	// obligation is live from function entry (parameter summaries).
	Start ast.Node

	// Satisfies reports whether a call discharges the obligation outright
	// (d.Release(), proc.DropPrivilege(res, ...), a same-package callee
	// summarized as always-discharging its parameter).
	Satisfies func(call *ast.CallExpr) bool

	// EscapeDischarges treats storing the resource into a field, element,
	// global, channel or goroutine as an ownership transfer.
	EscapeDischarges bool
	// EscapeExempt marks calls whose arguments do not count as escaping
	// mentions: privdrop exempts kernel.Grant itself, so assigning the
	// grant's *label* into a struct is not mistaken for storing the handle.
	EscapeExempt func(call *ast.CallExpr) bool
	// ReturnDischarges treats returning the resource as handing the
	// obligation to the caller.
	ReturnDischarges bool
	// DynamicCallDischarges treats passing the resource to a func-value
	// call (handler/yield invocation) as a transfer.
	DynamicCallDischarges bool

	leaks []Leak
}

// Leak is one escaping path: the exit's position and what went wrong.
type Leak struct {
	Pos    token.Pos
	Reason string
}

// state is the per-path obligation: nil pointer = path unreachable,
// live = obligation outstanding.
type state struct{ live bool }

func merge(a, b *state) *state {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &state{live: a.live || b.live}
}

func clone(s *state) *state {
	if s == nil {
		return nil
	}
	c := *s
	return &c
}

// Check walks body and returns every path on which the obligation
// activates and escapes. Functions containing goto are skipped (no
// findings): the structural walk does not model irreducible flow.
func (t *Tracker) Check(body *ast.BlockStmt) []Leak {
	hasGoto := false
	ast.Inspect(body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
			hasGoto = true
		}
		return !hasGoto
	})
	if hasGoto {
		return nil
	}
	w := &walker{t: t}
	res := w.stmts(body.List, &state{live: t.Start == nil})
	w.exit(res.fall, body.Rbrace, "function exit")
	// Unlabeled break/continue with no enclosing loop cannot parse; any
	// recorded ones at top level would be syntax errors. Ignore.
	t.leaks = dedup(t.leaks)
	return t.leaks
}

func dedup(ls []Leak) []Leak {
	seen := make(map[Leak]bool, len(ls))
	out := ls[:0]
	for _, l := range ls {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// result carries the continuations out of a statement list.
type result struct {
	fall *state            // falls off the end
	brk  map[string]*state // break, by label ("" = unlabeled)
	cont map[string]*state // continue, by label
}

func (r *result) addBrk(label string, s *state) {
	if s == nil {
		return
	}
	if r.brk == nil {
		r.brk = map[string]*state{}
	}
	r.brk[label] = merge(r.brk[label], s)
}

func (r *result) addCont(label string, s *state) {
	if s == nil {
		return
	}
	if r.cont == nil {
		r.cont = map[string]*state{}
	}
	r.cont[label] = merge(r.cont[label], s)
}

// absorb folds o's break/continue continuations into r; the enclosing
// loop/switch walkers consume the entries addressed to them afterwards.
func (r *result) absorb(o result) {
	for l, s := range o.brk {
		r.addBrk(l, s)
	}
	for l, s := range o.cont {
		r.addCont(l, s)
	}
}

type walker struct {
	t *Tracker
}

// exit reports a leak if the obligation is live on a path leaving the
// function at pos.
func (w *walker) exit(s *state, pos token.Pos, how string) {
	if s != nil && s.live {
		w.t.leaks = append(w.t.leaks, Leak{Pos: pos, Reason: how})
	}
}

func (w *walker) containsStart(n ast.Node) bool {
	if w.t.Start == nil || n == nil {
		return false
	}
	return w.t.Start.Pos() >= n.Pos() && w.t.Start.End() <= n.End()
}

func (w *walker) stmts(list []ast.Stmt, st *state) result {
	var res result
	cur := st
	for _, s := range list {
		if cur == nil {
			break // unreachable
		}
		r := w.stmt(s, cur)
		for l, b := range r.brk {
			res.addBrk(l, b)
		}
		for l, c := range r.cont {
			res.addCont(l, c)
		}
		cur = r.fall
	}
	res.fall = cur
	return res
}

// stmt walks one statement.
func (w *walker) stmt(s ast.Stmt, st *state) result {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)

	case *ast.IfStmt:
		if s.Init != nil {
			r := w.stmt(s.Init, st)
			st = r.fall
		}
		// Calls in the condition can discharge (`if !yield(d) { return }`).
		w.scanCalls(s.Cond, st)
		thenSt, elseSt := w.guard(s.Cond, st)
		var res result
		rThen := w.stmt(s.Body, clone(thenSt))
		res.absorb(rThen)
		var elseFall *state
		if s.Else != nil {
			rElse := w.stmt(s.Else, clone(elseSt))
			res.absorb(rElse)
			elseFall = rElse.fall
		} else {
			elseFall = elseSt
		}
		res.fall = merge(rThen.fall, elseFall)
		return res

	case *ast.ForStmt:
		if s.Init != nil {
			r := w.stmt(s.Init, st)
			st = r.fall
		}
		return w.loop(st, s.Body, s.Cond != nil, s, s.Post)

	case *ast.RangeStmt:
		// Range acquisitions (Start == the RangeStmt) activate at the top
		// of each iteration — loop() handles that so the zero-iteration
		// fall-through keeps the un-acquired entry state.
		return w.loop(st, s.Body, true, s, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			r := w.stmt(s.Init, st)
			st = r.fall
		}
		return w.switchBody(s.Body, st, s.Tag == nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			r := w.stmt(s.Init, st)
			st = r.fall
		}
		return w.switchBody(s.Body, st, false)

	case *ast.SelectStmt:
		var res result
		var fall *state
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			entry := clone(st)
			if cc.Comm != nil {
				r := w.stmt(cc.Comm, entry)
				entry = r.fall
			}
			r := w.stmts(cc.Body, entry)
			res.absorb(r)
			fall = merge(fall, r.fall)
		}
		if len(s.Body.List) == 0 {
			fall = st
		}
		// select{} with no cases blocks forever; merged case falls plus
		// breaks form the continuation.
		res.fall = merge(fall, res.brk[""])
		delete(res.brk, "")
		return res

	case *ast.LabeledStmt:
		inner := w.stmtLabeled(s.Stmt, st, s.Label.Name)
		return inner

	case *ast.ReturnStmt:
		w.scanEvents(s, st)
		if st != nil && st.live {
			if w.t.ReturnDischarges {
				for _, e := range s.Results {
					if w.carries(e) {
						return result{}
					}
				}
			}
			w.exit(st, s.Pos(), "return")
		}
		return result{} // no continuation

	case *ast.BranchStmt:
		var res result
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			res.addBrk(label, st)
		case token.CONTINUE:
			res.addCont(label, st)
		case token.FALLTHROUGH:
			// Handled by switchBody via the fall state.
			res.fall = st
		}
		return res

	case *ast.DeferStmt:
		w.activateIfStart(s, st)
		if st != nil {
			if w.deferSatisfies(s.Call) {
				st = &state{live: false}
			}
		}
		return result{fall: st}

	case *ast.GoStmt:
		w.activateIfStart(s, st)
		if st != nil && st.live && w.t.EscapeDischarges && w.mentions(s.Call) {
			st = &state{live: false}
		}
		return result{fall: st}

	default:
		// Simple statements: assign, expr, send, incdec, decl, empty.
		st = clone(st)
		w.activateIfStart(s, st)
		w.scanEvents(s, st)
		if w.terminates(s) {
			// panic/os.Exit/log.Fatal: the path ends here; a live
			// obligation on a crash path is not a leak worth reporting.
			return result{}
		}
		return result{fall: st}
	}
}

// stmtLabeled walks a labeled loop/switch so labeled break/continue
// resolve against it.
func (w *walker) stmtLabeled(s ast.Stmt, st *state, label string) result {
	r := w.stmt(s, st)
	// A labeled break addressed to this statement falls through here. A
	// labeled continue is a back edge of this loop; folding it into the
	// fall state keeps any live obligation flowing to the function exit
	// (conservative: at worst the leak is reported there instead of at
	// the back edge).
	if b, ok := r.brk[label]; ok {
		r.fall = merge(r.fall, b)
		delete(r.brk, label)
	}
	if c, ok := r.cont[label]; ok {
		r.fall = merge(r.fall, c)
		delete(r.cont, label)
	}
	return r
}

// loop walks a for/range body: continues and the body's fall state feed
// the back edge; breaks and (when the loop can run zero times) the entry
// state feed the continuation.
func (w *walker) loop(st *state, body *ast.BlockStmt, mayskip bool, loopNode ast.Node, post ast.Stmt) result {
	startInside := w.containsStart(body) || w.t.Start == loopNode
	entry := clone(st)
	if w.t.Start == loopNode && entry != nil {
		// The loop statement itself acquires (range over Drain): the
		// obligation is live from the top of every iteration, but not on
		// the zero-iteration path that skips the body.
		entry.live = true
	}
	r := w.stmts(body.List, entry)

	// Back-edge states: fall off body end + unlabeled continues (labeled
	// continues addressed elsewhere propagate out; ones addressed to this
	// loop's label were rewritten by stmtLabeled… they were not — handle
	// all continue labels here conservatively by treating any labeled
	// continue that reaches this loop's walk as a back edge of some
	// enclosing loop; only the unlabeled ones are ours for certain.)
	back := merge(r.fall, r.cont[""])
	delete(r.cont, "")
	if post != nil && back != nil {
		pr := w.stmt(post, back)
		back = pr.fall
	}
	if startInside {
		// Per-iteration obligation: live at the back edge means the next
		// iteration re-acquires on top of the leak.
		w.exit(back, body.End(), "end of loop iteration (re-acquired next round)")
		back = &state{live: false}
	}

	var res result
	for l, b := range r.brk {
		if l == "" {
			continue
		}
		res.addBrk(l, b)
	}
	for l, c := range r.cont {
		res.addCont(l, c)
	}
	fall := r.brk[""]
	if mayskip {
		fall = merge(fall, st)
	}
	// One-pass fixpoint approximation: a second iteration entering with
	// the back-edge state could only add live-ness the merge below already
	// includes (states form a 2-point lattice and the walk is monotone).
	fall = merge(fall, back)
	res.fall = fall
	return res
}

// switchBody walks switch cases; condSwitch applies guard analysis to the
// case expressions of an untagged switch.
func (w *walker) switchBody(body *ast.BlockStmt, st *state, condSwitch bool) result {
	var res result
	var fall *state       // merged normal completions
	chain := clone(st)    // state on the "no case matched yet" path
	var ftState *state    // fallthrough into the next case
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		entry := clone(chain)
		if condSwitch && len(cc.List) > 0 {
			var caseSt *state
			next := chain
			for _, cond := range cc.List {
				thenSt, elseSt := w.guard(cond, next)
				caseSt = merge(caseSt, thenSt)
				next = elseSt
			}
			entry = caseSt
			chain = next
		}
		if len(cc.List) == 0 {
			hasDefault = true
		}
		entry = merge(entry, ftState)
		ftState = nil
		r := w.stmts(cc.Body, entry)
		res.absorb(r)
		if endsInFallthrough(cc.Body) {
			ftState = r.fall
		} else {
			fall = merge(fall, r.fall)
		}
	}
	fall = merge(fall, ftState)
	if !hasDefault {
		fall = merge(fall, chain) // nothing matched
	}
	fall = merge(fall, res.brk[""])
	delete(res.brk, "")
	res.fall = fall
	return res
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// activateIfStart flips the obligation live when the acquisition statement
// executes.
func (w *walker) activateIfStart(s ast.Stmt, st *state) {
	if st != nil && w.containsStart(s) {
		st.live = true
	}
}

// scanEvents applies the discharge/overwrite events of one simple
// statement to st (in place).
func (w *walker) scanEvents(s ast.Stmt, st *state) {
	if st == nil || !st.live {
		return
	}
	isStart := w.containsStart(s)

	// Overwrite: re-assigning the tracked variable while the obligation is
	// live loses the only reference (the acquiring statement itself is
	// exempt — that IS the definition).
	if as, ok := s.(*ast.AssignStmt); ok && !isStart {
		for _, lhs := range as.Lhs {
			if w.isRes(lhs) {
				w.t.leaks = append(w.t.leaks, Leak{Pos: as.Pos(), Reason: "overwritten"})
				st.live = false // one report per path
				return
			}
		}
	}

	// Discharging calls anywhere in the statement.
	w.scanCalls(s, st)
	if !st.live {
		return
	}

	// Escape stores: the resource value moving into a field, element,
	// global or channel is an ownership transfer.
	if w.t.EscapeDischarges && w.escapes(s) {
		st.live = false
	}
}

// scanCalls clears the obligation if any call under n discharges it:
// a Satisfies match, or the resource handed to a func-value call.
func (w *walker) scanCalls(n ast.Node, st *state) {
	if n == nil || st == nil || !st.live {
		return
	}
	done := false
	ast.Inspect(n, func(x ast.Node) bool {
		if done {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // closures evaluated elsewhere; see deferSatisfies
		case *ast.CallExpr:
			if w.t.Satisfies != nil && w.t.Satisfies(x) {
				done = true
				return false
			}
			if w.t.DynamicCallDischarges && w.isDynamic(x) && w.argMentions(x) {
				done = true
				return false
			}
		}
		return true
	})
	if done {
		st.live = false
	}
}

// deferSatisfies reports whether a deferred call discharges: either
// directly (defer d.Release()) or via a closure that contains a
// discharging call (defer func() { ...; d.Release() }()).
func (w *walker) deferSatisfies(call *ast.CallExpr) bool {
	if w.t.Satisfies != nil && w.t.Satisfies(call) {
		return true
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && w.t.Satisfies != nil && w.t.Satisfies(c) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// escapes reports whether s stores the resource beyond the function:
// assignment into a selector/index/deref/global target whose value side
// mentions the resource, or a channel send of it.
func (w *walker) escapes(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.SendStmt:
		return w.mentionsStored(s.Value)
	case *ast.AssignStmt:
		// n:1 and n:n forms: conservatively, if any RHS mentions the
		// resource and any LHS is an escaping target, call it a transfer.
		rhsMentions := false
		for _, r := range s.Rhs {
			if w.mentionsStored(r) {
				rhsMentions = true
			}
		}
		if !rhsMentions {
			return false
		}
		for _, l := range s.Lhs {
			if EscapingTarget(w.t.Info, l) {
				return true
			}
		}
	}
	return false
}

// EscapingTarget reports whether an assignment target lets the value
// outlive the enclosing function's locals: a field, element, pointer
// dereference, or package-level variable. (Identifiers captured from an
// enclosing function count only when analyzing a closure body — the
// caller decides by passing the closure's scope; here package scope is
// the conservative line.)
func EscapingTarget(info *types.Info, lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return true // package-level var
			}
		}
	}
	return false
}

// guard splits st by a branch condition, recognizing resource-absence
// tests: res == nil, err != nil and their compositions kill the obligation
// on the matching branch.
func (w *walker) guard(cond ast.Expr, st *state) (thenSt, elseSt *state) {
	if st == nil {
		return nil, nil
	}
	dead := &state{live: false}
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.EQL, token.NEQ:
			if kill, ok := w.nilTest(c); ok {
				if (c.Op == token.EQL) == kill.absentWhenEqual {
					return dead, clone(st)
				}
				return clone(st), dead
			}
			// `err == ErrDead` (a specific sentinel): equality implies err
			// is non-nil, so the resource is absent on the then branch.
			if c.Op == token.EQL && w.errSentinelTest(c) {
				return dead, clone(st)
			}
		case token.LAND:
			// then: both conjuncts true; else: a false, or a true and b
			// false — dead only if both else-sides are.
			tA, eA := w.guard(c.X, st)
			tB, eB := w.guard(c.Y, tA)
			return tB, merge(eA, eB)
		case token.LOR:
			// then: a true, or a false and b true — dead only if both
			// then-sides are (`err != nil || d == nil` guards this way).
			tA, eA := w.guard(c.X, st)
			tB, eB := w.guard(c.Y, eA)
			return merge(tA, tB), eB
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			t, e := w.guard(c.X, st)
			return e, t
		}
	}
	return clone(st), clone(st)
}

type nilKill struct {
	// absentWhenEqual: `x == nil` means the resource is absent (res
	// compared to nil). For `err == nil` absence is on the NOT-equal side.
	absentWhenEqual bool
}

func (w *walker) nilTest(c *ast.BinaryExpr) (nilKill, bool) {
	x, y := ast.Unparen(c.X), ast.Unparen(c.Y)
	if isNil(w.t.Info, y) {
		return w.nilOperand(x)
	}
	if isNil(w.t.Info, x) {
		return w.nilOperand(y)
	}
	return nilKill{}, false
}

func (w *walker) nilOperand(e ast.Expr) (nilKill, bool) {
	if w.t.Nilable && w.isRes(e) {
		return nilKill{absentWhenEqual: true}, true
	}
	if w.t.Err != nil {
		if id, ok := e.(*ast.Ident); ok && w.t.Info.Uses[id] == w.t.Err {
			return nilKill{absentWhenEqual: false}, true
		}
	}
	return nilKill{}, false
}

// errSentinelTest reports whether c compares the companion error variable
// against a non-nil error-typed expression.
func (w *walker) errSentinelTest(c *ast.BinaryExpr) bool {
	if w.t.Err == nil {
		return false
	}
	x, y := ast.Unparen(c.X), ast.Unparen(c.Y)
	isErrVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && w.t.Info.Uses[id] == w.t.Err
	}
	other := ast.Expr(nil)
	switch {
	case isErrVar(x):
		other = y
	case isErrVar(y):
		other = x
	default:
		return false
	}
	if isNil(w.t.Info, other) {
		return false
	}
	tv, ok := w.t.Info.Types[other]
	return ok && types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := info.Uses[id].(*types.Nil)
	return isNilConst || id.Name == "nil"
}

// isRes reports whether e denotes the tracked resource.
func (w *walker) isRes(e ast.Expr) bool {
	return MatchResource(w.t.Info, w.t.Res, e)
}

// carries reports whether a returned expression hands the resource itself
// to the caller: the resource, its address, or a composite literal
// embedding it. A call taking the resource as an argument does NOT carry
// it — `return parse(d)` returns parse's result, and d still leaks (the
// original adminExec payload-leak shape).
func (w *walker) carries(e ast.Expr) bool {
	e = ast.Unparen(e)
	if w.isRes(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.carries(e.X)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.carries(el) {
				return true
			}
		}
	}
	return false
}

// mentionsStored is mentions minus occurrences inside EscapeExempt calls:
// used for escape-store detection, where e.g. an argument of kernel.Grant
// contributes to the label value, not to where the handle itself is stored.
func (w *walker) mentionsStored(n ast.Node) bool {
	if w.t.EscapeExempt == nil {
		return w.mentions(n)
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok && w.t.EscapeExempt(c) {
			return false
		}
		if e, ok := x.(ast.Expr); ok && w.isRes(e) {
			found = true
		}
		return !found
	})
	return found
}

// mentions reports whether the resource occurs anywhere under e.
func (w *walker) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok && w.isRes(e) {
			found = true
		}
		return !found
	})
	return found
}

// argMentions reports whether any argument of the call mentions the
// resource.
func (w *walker) argMentions(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if w.mentions(a) {
			return true
		}
	}
	return false
}

// isDynamic reports whether the call invokes a func value rather than a
// declared function/method (handler tables, yield callbacks).
func (w *walker) isDynamic(call *ast.CallExpr) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := w.t.Info.Uses[f]
		if obj == nil {
			return false
		}
		if _, isFunc := obj.(*types.Func); isFunc {
			return false
		}
		if _, isVar := obj.(*types.Var); isVar {
			return true // func-typed variable or parameter
		}
		return false
	case *ast.SelectorExpr:
		if sel := w.t.Info.Selections[f]; sel != nil {
			_, isVar := sel.Obj().(*types.Var)
			return isVar // func-typed field
		}
		if obj := w.t.Info.Uses[f.Sel]; obj != nil {
			_, isVar := obj.(*types.Var)
			return isVar
		}
	}
	return false
}

// MatchResource reports whether e denotes res: the identifier resolving to
// res.Obj, or (for selector resources) a selector chain printing as
// res.Sel whose root identifier resolves to res.Obj.
func MatchResource(info *types.Info, res Resource, e ast.Expr) bool {
	e = ast.Unparen(e)
	if res.Sel == "" {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		return obj != nil && obj == res.Obj
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if ExprPath(sel) != res.Sel {
		return false
	}
	root := rootIdent(sel)
	if root == nil {
		return false
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	return obj != nil && obj == res.Obj
}

// ExprPath prints an ident/selector chain ("cs.id.UT"); "" for anything
// else (calls, indexes — those are not stable resource names).
func ExprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// terminates recognizes statements that end the goroutine without a
// normal return: panic and the conventional fatal helpers.
func (w *walker) terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		switch f.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Goexit", "Fatalln":
			return true
		}
	}
	return false
}
