package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //asbestos:<verb> comment: the waiver mechanism the
// analyzers honor. Reason is the free text after the verb; the analyzers
// require it to be non-empty so every waiver documents itself.
type Directive struct {
	Pos    token.Pos
	Reason string
}

// Directives collects every //asbestos:<verb> comment in the file, keyed
// by the line the comment sits on. A waiver applies to findings on its own
// line (trailing comment) or the line below (comment above the statement);
// callers check both.
func Directives(fset *token.FileSet, file *ast.File, verb string) map[int]Directive {
	prefix := "//asbestos:" + verb
	out := make(map[int]Directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, prefix)
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // longer verb, e.g. keepstarX
			}
			out[fset.Position(c.Pos()).Line] = Directive{
				Pos:    c.Pos(),
				Reason: strings.TrimSpace(rest),
			}
		}
	}
	return out
}

// WaiverFor looks up a directive covering a finding at pos: same line or
// the line above, or (when fd is non-nil) the function's doc comment.
func WaiverFor(fset *token.FileSet, dirs map[int]Directive, pos token.Pos, fd *ast.FuncDecl, verb string) (Directive, bool) {
	line := fset.Position(pos).Line
	if d, ok := dirs[line]; ok {
		return d, true
	}
	if d, ok := dirs[line-1]; ok {
		return d, true
	}
	if fd != nil && fd.Doc != nil {
		prefix := "//asbestos:" + verb
		for _, c := range fd.Doc.List {
			if rest, ok := strings.CutPrefix(c.Text, prefix); ok {
				return Directive{Pos: c.Pos(), Reason: strings.TrimSpace(rest)}, true
			}
		}
	}
	return Directive{}, false
}
