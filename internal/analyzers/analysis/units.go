package analysis

import (
	"go/ast"
	"go/types"
)

// FuncUnit is one function body to analyze independently: a FuncDecl's or
// FuncLit's. Closures are separate units — an obligation acquired inside a
// closure must be discharged inside it (the closure may run on another
// goroutine or never), so the walkers never look across the FuncLit
// boundary in either direction.
type FuncUnit struct {
	// Decl is the declaration when the unit is a named function, nil for
	// closures; Lit the reverse.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
}

// Node returns the unit's syntax node (for position/scope queries).
func (u FuncUnit) Node() ast.Node {
	if u.Decl != nil {
		return u.Decl
	}
	return u.Lit
}

// FuncUnits lists every function body in the file: declarations first,
// then each closure (at any nesting depth) as its own unit.
func FuncUnits(file *ast.File) []FuncUnit {
	var units []FuncUnit
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				units = append(units, FuncUnit{Decl: n, Body: n.Body})
			}
		case *ast.FuncLit:
			units = append(units, FuncUnit{Lit: n, Body: n.Body})
		}
		return true
	})
	return units
}

// InspectUnit walks body without descending into nested function literals,
// so each unit's analysis sees only its own statements.
func InspectUnit(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// IsDeliveryPtr reports whether t is *kernel.Delivery.
func IsDeliveryPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && KernelType(ptr.Elem(), "Delivery")
}

// IsHandle reports whether t is handle.Handle.
func IsHandle(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Handle" && obj.Pkg() != nil && pkgSuffix(obj.Pkg().Path(), "internal/handle")
}

// FirstResultIs reports whether the call's (first) result type satisfies
// pred — works for single- and tuple-result calls.
func FirstResultIs(info *types.Info, call *ast.CallExpr, pred func(types.Type) bool) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && pred(t.At(0).Type())
	default:
		return pred(t)
	}
}

// ParamObjs returns the declared parameter objects of fd in order,
// with nil entries for unnamed/blank parameters.
func ParamObjs(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				objs = append(objs, nil)
				continue
			}
			objs = append(objs, info.Defs[name])
		}
	}
	return objs
}

// CalleeDischargesArg reports whether call passes a matching argument to a
// same-package function whose summary says that parameter is always
// discharged. Variadic positions are never treated as discharging.
func CalleeDischargesArg(info *types.Info, call *ast.CallExpr, sums map[*types.Func][]bool, match func(ast.Expr) bool) bool {
	fn := Callee(info, call)
	if fn == nil {
		return false
	}
	flags, ok := sums[fn]
	if !ok {
		return false
	}
	if call.Ellipsis.IsValid() {
		return false
	}
	for i, arg := range call.Args {
		if i >= len(flags) {
			break
		}
		if flags[i] && match(arg) {
			return true
		}
	}
	return false
}

func pkgSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}
