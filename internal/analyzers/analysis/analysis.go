// Package analysis is the minimal in-repo counterpart of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass surface for
// the asbestosvet suite (cmd/asbestosvet) and its drivers. The repo bakes
// in no third-party modules, so the contract the x/tools ecosystem
// standardizes — an Analyzer with a Run function over a type-checked
// package, reporting position-anchored diagnostics — is restated here in
// ~100 lines and kept source-compatible enough that the analyzers could
// be ported to the real package by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic tag; it must be a
	// valid Go identifier.
	Name string
	// Doc is the help text: first line is the one-line summary, the rest
	// states the enforced contract and names its escape hatches.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the analysis of a single package: parsed syntax, type
// information, and a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic; drivers install it.
	Report func(Diagnostic)
}

// Diagnostic is a position-anchored finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// InTestFile reports whether pos lies in a _test.go file. The asbestosvet
// contracts bind production code; tests exercise deliberate violations
// (leaked payloads to assert pool gaps, Background receives under a test
// deadline) and are exempt wholesale.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// KernelType reports whether t (after stripping pointers) is the named
// kernel type, matching by package-path suffix so the check works
// identically against the real tree ("asbestos/internal/kernel") and the
// analysistest stubs mirroring it.
func KernelType(t types.Type, name string) bool {
	return pathType(t, "internal/kernel", name)
}

// LabelType is KernelType for asbestos/internal/label.
func LabelType(t types.Type, name string) bool {
	return pathType(t, "internal/label", name)
}

func pathType(t types.Type, pathSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pathSuffix)
}

// PkgFunc reports whether the call's callee is the package-level function
// pkgSuffix.name (e.g. "internal/kernel".Grant), resolved through the type
// info so aliases and qualified imports are all handled.
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), pkgSuffix) && !IsMethod(fn)
}

// Callee resolves the static callee of a call, or nil for dynamic calls
// (func values) and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		if sel := info.Selections[f]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = info.Uses[f.Sel] // package-qualified
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsMethod reports whether fn has a receiver.
func IsMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// MethodOn reports whether call invokes a method with the given name whose
// receiver type (pointer-stripped) is pkgSuffix.typeName.
func MethodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName, name string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return pathType(sig.Recv().Type(), pkgSuffix, typeName)
}
