// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against `// want "regexp"`
// annotations — the x/tools go/analysis testing convention, restated on
// the standard library for the asbestosvet suite.
//
// Fixtures live under <testdata>/src/<pkgpath>/*.go. Imports resolve
// against the same tree, so stub packages mirroring the real import paths
// (asbestos/internal/kernel etc.) sit next to the fixture packages; the
// analyzers match types by package-path suffix, so the stubs exercise the
// same code paths as the real tree.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"asbestos/internal/analyzers/analysis"
	"asbestos/internal/analyzers/unitchecker"
)

// TestData returns the shared fixture root for the analyzer packages:
// internal/analyzers/testdata, resolved relative to the test's cwd.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run analyzes each fixture package under dir/src with a and reports
// every mismatch between diagnostics and // want annotations as a test
// error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		t.Run(pkgpath, func(t *testing.T) {
			runOne(t, dir, a, pkgpath)
		})
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := &loader{fset: token.NewFileSet(), src: filepath.Join(dir, "src"), pkgs: map[string]*types.Package{}}
	files, pkg, info, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}

	diags := unitchecker.RunAnalyzers([]*analysis.Analyzer{a}, ld.fset, files, pkg, info)

	wants := collectWants(t, ld.fset, files)
	var unmatched []string
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		key := posKey{filepath.Base(pos.Filename), pos.Line}
		ws := wants[key]
		found := false
		for i, w := range ws {
			if w != nil && w.rx.MatchString(d.Message) {
				ws[i] = nil
				found = true
				break
			}
		}
		if !found {
			unmatched = append(unmatched, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", key.file, key.line, d.Message))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				unmatched = append(unmatched, fmt.Sprintf("%s:%d: no diagnostic matched want %q", key.file, key.line, w.rx))
			}
		}
	}
	sort.Strings(unmatched)
	for _, m := range unmatched {
		t.Error(m)
	}
}

type posKey struct {
	file string
	line int
}

type want struct{ rx *regexp.Regexp }

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses `// want "re" "re"...` comments; backquoted strings
// are accepted too. The annotation binds to its own line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				for _, pat := range splitPatterns(m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", key.file, key.line, pat, err)
					}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitPatterns pulls the quoted (or backquoted) regexps out of a want
// annotation's payload.
func splitPatterns(s string) []string {
	var pats []string
	for i := 0; i < len(s); {
		switch s[i] {
		case '"', '`':
			q := s[i]
			j := i + 1
			for j < len(s) && s[j] != q {
				if q == '"' && s[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(s) {
				raw := s[i+1 : j]
				if q == '"' {
					raw = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(raw)
				}
				pats = append(pats, raw)
			}
			i = j + 1
		default:
			i++
		}
	}
	return pats
}

// loader type-checks fixture packages, resolving imports from the same
// src tree (depth-first, memoized).
type loader struct {
	fset *token.FileSet
	src  string
	pkgs map[string]*types.Package
}

func (ld *loader) load(pkgpath string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ld.src, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := unitchecker.NewInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	ld.pkgs[pkgpath] = pkg
	return files, pkg, info, nil
}

// Import implements types.Importer over the fixture tree.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	_, pkg, _, err := ld.load(path)
	if err != nil {
		return nil, fmt.Errorf("importing %s: %v", path, err)
	}
	return pkg, nil
}
