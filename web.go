package asbestos

// The userspace-server surface of the facade: the OK Web server stack
// (§7), the labeled file server (§5.2–5.4), HTTP message types, and the
// simulated network that load generators dial into.

import (
	"asbestos/internal/fs"
	"asbestos/internal/httpmsg"
	"asbestos/internal/idd"
	"asbestos/internal/netd"
	"asbestos/internal/okws"
	"asbestos/internal/workload"
)

// WebServer is a running OKWS stack (§7).
type WebServer = okws.Server

// WebService describes one OKWS worker.
type WebService = okws.Service

// WebConfig configures LaunchWeb. Besides the shard/burst knobs for the
// trusted services, it tunes the identity server: IddShards loops sharded
// by username hash (0 follows Shards), and IddOptions for the login path's
// semantics — passwords are stored as Argon2id hashes and verified in
// constant time, each idd shard holds a bounded LRU identity cache so
// repeat logins verify locally without a database round trip, and failed
// logins climb a bounded per-username lockout ladder (IddOptions.Ladder;
// attempts against a locked name are deferred unverified, so credential
// stuffing costs the attacker time, not the server hashing work).
//
// Three knobs form the lifecycle-deadline ladder, finest first:
// RequestDeadline bounds one request end to end (demux read, login round
// trips, taint, handoff, and the worker handler's ctx share the one
// clock), SessionTTL evicts idle sessions and reclaims their worker event
// processes, and IdleTimeout is netd's backstop that tears down silent
// connections. All three ride the per-shard timer wheels — an idle shard
// arms no standing tick — and each defaults to 0 (disabled).
type WebConfig = okws.Config

// IddOptions tunes the identity server (WebConfig.IddOptions): identity
// cache bound, Argon2id cost, lockout ladder. IddBackoffRung is one rung of
// that ladder.
type (
	IddOptions     = idd.Options
	IddBackoffRung = idd.BackoffRung
)

// WebHandler is a worker's application logic; WebCtx its per-request
// context.
type (
	WebHandler = okws.Handler
	WebCtx     = okws.Ctx
)

// Request and Response are the HTTP messages handlers consume and produce.
type (
	Request  = httpmsg.Request
	Response = httpmsg.Response
)

// Network is the simulated wire remote peers dial into (WebServer.Network).
type Network = netd.Network

// TCPFrontend is a real-socket front end bound to the web server's HTTP
// port (WebServer.ListenTCP). It runs alongside — not instead of — the
// simulated Network: both are netd Transports feeding the same per-shard
// service loops, so a browser on the TCP side and a workload generator on
// the simulated side hit identical demux, login, and worker paths. Close
// the server (or the front end) to tear it down. Two engines implement it,
// selected by TCPConfig.Poller (WebConfig.TCP): on Linux an epoll poller
// runs one goroutine per netd shard and moves bytes only on readiness, so
// ten thousand parked keep-alive connections cost no goroutines at all;
// elsewhere (or with PollerOff) each connection gets buffered reader and
// writer goroutines, so a stalled client still parks only its own
// connection.
type TCPFrontend = netd.TCPFrontend

// TCPListener is the portable goroutine-pair engine behind TCPFrontend,
// exported for code that selects it explicitly (PollerOff).
type TCPListener = netd.TCPListener

// TCPConfig (WebConfig.TCP) picks the front-end engine; PollerAuto /
// PollerOn / PollerOff are the modes.
type (
	TCPConfig  = netd.TCPConfig
	PollerMode = netd.PollerMode
)

// Poller engine modes for TCPConfig.
const (
	PollerAuto = netd.PollerAuto
	PollerOn   = netd.PollerOn
	PollerOff  = netd.PollerOff
)

// LaunchWeb boots the full OKWS stack of Figure 1.
var LaunchWeb = okws.Launch

// HTTPGet issues one authenticated GET over the simulated network — the
// load-generator primitive of the evaluation.
var HTTPGet = workload.Get

// FileServer is the labeled multi-user file server of §5.2–§5.4;
// FileIdentity a registered principal's (uT, uG) pair.
type (
	FileServer   = fs.Server
	FileIdentity = fs.Identity
)

// NewFileServer boots a file server and publishes its port.
var NewFileServer = fs.New

// File-server client calls. Destinations are Port endpoints of the calling
// process (bind the published handle with Process.Port).
var (
	FileRegister = fs.Register
	FileCreate   = fs.Create
	FileWrite    = fs.Write
	FileRead     = fs.Read
	FileList     = fs.List
)

// Parsers for file-server replies.
var (
	ParseFileReadReply  = fs.ParseReadReply
	ParseFileWriteReply = fs.ParseWriteReply
	ParseFileListReply  = fs.ParseListReply
)

// FileServerEnv is the environment key under which the file server
// publishes its request port.
const FileServerEnv = fs.EnvName
