package asbestos

// The userspace-server surface of the facade: the OK Web server stack
// (§7), the labeled file server (§5.2–5.4), HTTP message types, and the
// simulated network that load generators dial into.

import (
	"asbestos/internal/fs"
	"asbestos/internal/httpmsg"
	"asbestos/internal/netd"
	"asbestos/internal/okws"
	"asbestos/internal/workload"
)

// WebServer is a running OKWS stack (§7).
type WebServer = okws.Server

// WebService describes one OKWS worker.
type WebService = okws.Service

// WebConfig configures LaunchWeb.
type WebConfig = okws.Config

// WebHandler is a worker's application logic; WebCtx its per-request
// context.
type (
	WebHandler = okws.Handler
	WebCtx     = okws.Ctx
)

// Request and Response are the HTTP messages handlers consume and produce.
type (
	Request  = httpmsg.Request
	Response = httpmsg.Response
)

// Network is the simulated wire remote peers dial into (WebServer.Network).
type Network = netd.Network

// LaunchWeb boots the full OKWS stack of Figure 1.
var LaunchWeb = okws.Launch

// HTTPGet issues one authenticated GET over the simulated network — the
// load-generator primitive of the evaluation.
var HTTPGet = workload.Get

// FileServer is the labeled multi-user file server of §5.2–§5.4;
// FileIdentity a registered principal's (uT, uG) pair.
type (
	FileServer   = fs.Server
	FileIdentity = fs.Identity
)

// NewFileServer boots a file server and publishes its port.
var NewFileServer = fs.New

// File-server client calls. Destinations are Port endpoints of the calling
// process (bind the published handle with Process.Port).
var (
	FileRegister = fs.Register
	FileCreate   = fs.Create
	FileWrite    = fs.Write
	FileRead     = fs.Read
	FileList     = fs.List
)

// Parsers for file-server replies.
var (
	ParseFileReadReply  = fs.ParseReadReply
	ParseFileWriteReply = fs.ParseWriteReply
	ParseFileListReply  = fs.ParseListReply
)

// FileServerEnv is the environment key under which the file server
// publishes its request port.
const FileServerEnv = fs.EnvName
