// Package asbestos is a userspace reproduction of the Asbestos operating
// system's labels and event processes (Efstathopoulos et al., SOSP 2005):
// a kernel in which every IPC carries information-flow labels, and the
// servers of the paper's OK Web server run as labeled processes.
//
// # The IPC surface
//
// The center of the API is the Port endpoint. A process creates a port it
// owns with Open, binds a handle it was granted with Process.Port, and
// from then on sends through the endpoint — which caches the kernel route,
// so the hot path does one atomic load instead of a handle-table lookup:
//
//	sys := asbestos.NewSystem()
//	alice, bob := sys.NewProcess("alice"), sys.NewProcess("bob")
//	inbox := bob.Open(nil)                   // bob owns the receive side
//	inbox.SetLabel(asbestos.EmptyLabel(asbestos.L3))
//
//	ep := alice.Port(inbox.Handle())         // alice's send endpoint
//	ep.Send([]byte("hi"), nil)
//	d, err := inbox.Recv(ctx)                // ctx-aware: cancellable, deadline
//
// Receives honor context.Context throughout: Port.Recv, Mailbox.Recv and
// Process.RecvCtx return when a message is deliverable, the process exits,
// or the context ends the wait. TryRecv polls; Mailbox.Drain iterates a
// burst without blocking; Select waits on any of N ports — even of
// different processes — without spinning:
//
//	d, from, err := asbestos.Select(ctx, inbox, other)
//
// Batching (Port.SendBatch, Batcher) enqueues N messages with one syscall,
// one label check per distinct options value and one queue CAS.
//
// Port endpoints are the only IPC surface: the v1 handle-based shims
// (Process.NewPort/Send/Recv/SendBatch) are gone. Create owned ports with
// Process.Open, bind wire-carried handles with Process.Port.
//
// # Layout
//
// The root package is a facade over the implementation packages, and the
// one import applications need:
//
//   - internal/label — the label algebra: levels [⋆,0,1,2,3], ⊑/⊔/⊓, the
//     chunked copy-on-write representation of §5.6
//   - internal/handle — 61-bit unpredictable handle allocation (§4, §8)
//   - internal/kernel — processes, ports, the send/recv label checks of
//     Figure 4, and event processes (§6)
//   - internal/evloop — the shared sharded event-loop runtime the trusted
//     services run on (adaptive burst dispatch, reply batching, cross-shard
//     forwarding, delivery release)
//   - internal/netd, internal/db, internal/dbproxy, internal/idd,
//     internal/fs — the userspace servers of Figure 1
//   - internal/okws — the OK Web server (§7)
//   - internal/baseline, internal/workload, internal/experiments — the
//     evaluation harness (§9)
//
// examples/ and cmd/ are written against this facade and show idiomatic
// use; start with examples/quickstart.
package asbestos

import (
	"asbestos/internal/handle"
	"asbestos/internal/kernel"
	"asbestos/internal/label"
)

// Handle names a compartment or port (61-bit, unique since boot).
type Handle = handle.Handle

// Level is an Asbestos privilege level: Star (⋆), L0..L3.
type Level = label.Level

// Label is a function from handles to levels with lattice operations.
type Label = label.Label

// Entry is one explicit (handle, level) pair of a label literal.
type Entry = label.Entry

// Re-exported levels.
const (
	Star = label.Star
	L0   = label.L0
	L1   = label.L1
	L2   = label.L2
	L3   = label.L3
)

// System is the emulated Asbestos kernel.
type System = kernel.System

// Option configures a System; see WithSeed, WithQueueLimit, WithProfiler.
type Option = kernel.Option

// Process is an Asbestos process; EventProcess its lightweight isolated
// context (§6).
type (
	Process      = kernel.Process
	EventProcess = kernel.EventProcess
)

// Port is a process's endpoint to a kernel port: cached send route,
// context-aware receive. Created by Process.Open (owning side) or
// Process.Port (send side).
type Port = kernel.Port

// Mailbox is the receive side of a set of one process's ports; see
// Process.Mailbox.
type Mailbox = kernel.Mailbox

// SendOpts carries the optional labels of the send system call: C_S, D_S,
// D_R and V (Figure 4).
type SendOpts = kernel.SendOpts

// Delivery is a received message: payload plus the sender's verification
// label. The payload buffer is kernel-pooled — a receiver done with it may
// call Release to recycle it (the trusted event loops do, per handler),
// Detach to take ownership, or simply drop the Delivery and let the
// garbage collector have it.
type Delivery = kernel.Delivery

// BatchEntry is one message of a SendBatch; Batcher accumulates messages
// per destination and flushes each as one batch.
type (
	BatchEntry = kernel.BatchEntry
	Batcher    = kernel.Batcher
)

// NewSystem boots an empty kernel.
var NewSystem = kernel.NewSystem

// WithSeed keys the handle allocator (deterministic tests); WithQueueLimit
// bounds per-process queues; WithProfiler attaches a component profiler.
var (
	WithSeed       = kernel.WithSeed
	WithQueueLimit = kernel.WithQueueLimit
	WithProfiler   = kernel.WithProfiler
)

// Select waits for a message on any of the given ports — which may belong
// to different processes — returning the delivery and the port it arrived
// on.
var Select = kernel.Select

// NewBatcher returns an empty per-destination send coalescer for p.
var NewBatcher = kernel.NewBatcher

// ErrDead is returned by receives on (and sends from) an exited process.
var ErrDead = kernel.ErrDead

// NewLabel builds a label from a default level and explicit entries.
var NewLabel = label.New

// EmptyLabel returns the label mapping every handle to def.
var EmptyLabel = label.Empty

// ParseLabel parses the paper's set notation, e.g. "{h7 *, h9 3, 1}".
var ParseLabel = label.Parse

// Grant builds a D_S label handing out ⋆ for the given handles (capability
// grant, §5.5); Taint builds a C_S contamination label; AllowRecv builds a
// D_R clearance label; VerifyLabel builds a V credential proof.
var (
	Grant       = kernel.Grant
	Taint       = kernel.Taint
	AllowRecv   = kernel.AllowRecv
	VerifyLabel = kernel.VerifyLabel
)
