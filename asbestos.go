// Package asbestos is a userspace reproduction of the Asbestos operating
// system's labels and event processes (Efstathopoulos et al., SOSP 2005).
//
// The root package is a facade over the implementation packages:
//
//   - internal/label — the label algebra: levels [⋆,0,1,2,3], ⊑/⊔/⊓, the
//     chunked copy-on-write representation of §5.6
//   - internal/handle — 61-bit unpredictable handle allocation (§4, §8)
//   - internal/kernel — processes, ports, the send/recv label checks of
//     Figure 4, and event processes (§6)
//   - internal/netd, internal/db, internal/dbproxy, internal/idd,
//     internal/fs — the userspace servers of Figure 1
//   - internal/okws — the OK Web server (§7)
//   - internal/baseline, internal/workload, internal/experiments — the
//     evaluation harness (§9)
//
// The aliases below expose the core types under one import for library
// consumers; examples/ and cmd/ show idiomatic use.
package asbestos

import (
	"asbestos/internal/handle"
	"asbestos/internal/kernel"
	"asbestos/internal/label"
	"asbestos/internal/okws"
)

// Handle names a compartment or port (61-bit, unique since boot).
type Handle = handle.Handle

// Level is an Asbestos privilege level: Star (⋆), L0..L3.
type Level = label.Level

// Label is a function from handles to levels with lattice operations.
type Label = label.Label

// Re-exported levels.
const (
	Star = label.Star
	L0   = label.L0
	L1   = label.L1
	L2   = label.L2
	L3   = label.L3
)

// System is the emulated Asbestos kernel.
type System = kernel.System

// Process is an Asbestos process; EventProcess its lightweight isolated
// context (§6).
type (
	Process      = kernel.Process
	EventProcess = kernel.EventProcess
)

// SendOpts carries the optional labels of the send system call: C_S, D_S,
// D_R and V (Figure 4).
type SendOpts = kernel.SendOpts

// Delivery is a received message: payload plus the sender's verification
// label.
type Delivery = kernel.Delivery

// WebServer is a running OKWS stack (§7).
type WebServer = okws.Server

// WebService describes one OKWS worker.
type WebService = okws.Service

// WebConfig configures LaunchWeb.
type WebConfig = okws.Config

// WebHandler is a worker's application logic; WebCtx its per-request
// context.
type (
	WebHandler = okws.Handler
	WebCtx     = okws.Ctx
)

// NewSystem boots an empty kernel. See kernel.NewSystem for options.
var NewSystem = kernel.NewSystem

// NewLabel builds a label from a default level and explicit entries.
var NewLabel = label.New

// EmptyLabel returns the label mapping every handle to def.
var EmptyLabel = label.Empty

// ParseLabel parses the paper's set notation, e.g. "{h7 *, h9 3, 1}".
var ParseLabel = label.Parse

// LaunchWeb boots the full OKWS stack of Figure 1.
var LaunchWeb = okws.Launch

// Grant builds a D_S label handing out ⋆ for the given handles (capability
// grant, §5.5); Taint builds a C_S contamination label; AllowRecv builds a
// D_R clearance label; VerifyLabel builds a V credential proof.
var (
	Grant       = kernel.Grant
	Taint       = kernel.Taint
	AllowRecv   = kernel.AllowRecv
	VerifyLabel = kernel.VerifyLabel
)
