// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (§9). Each benchmark runs a scaled version of the experiment
// and reports the figure's metric via b.ReportMetric; the cmd/ binaries run
// the full paper-scale sweeps.
package asbestos

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"asbestos/internal/db"
	"asbestos/internal/dbproxy"
	"asbestos/internal/experiments"
	"asbestos/internal/httpmsg"
	"asbestos/internal/idd"
	"asbestos/internal/kernel"
	"asbestos/internal/label"
	"asbestos/internal/netd"
	"asbestos/internal/okws"
	"asbestos/internal/stats"
	"asbestos/internal/workload"
)

// BenchmarkFig6MemoryPerSession reproduces Figure 6: memory per cached and
// active session (paper: ≈1.5 pages cached, ≈+8 active).
func BenchmarkFig6MemoryPerSession(b *testing.B) {
	for _, variant := range []struct {
		name   string
		active bool
	}{{"cached", false}, {"active", true}} {
		b.Run(variant.name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Figure6([]int{200}, variant.active, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0].PagesPerSession
			}
			b.ReportMetric(last, "pages/session")
		})
	}
}

// BenchmarkFig7Throughput reproduces Figure 7: conns/sec for OKWS at
// several cached-session counts plus the two Apache baselines.
func BenchmarkFig7Throughput(b *testing.B) {
	for _, n := range []int{1, 100, 1000} {
		b.Run(fmt.Sprintf("OKWS/sessions=%d", n), func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Figure7OKWS([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				if rows[0].Errors > 0 {
					b.Fatalf("%d errors", rows[0].Errors)
				}
				cps = rows[0].ConnsPerSec
			}
			b.ReportMetric(cps, "conns/sec")
		})
	}
	for _, name := range []string{"Apache", "Mod-Apache"} {
		b.Run(name, func(b *testing.B) {
			var cps float64
			for i := 0; i < b.N; i++ {
				for _, r := range experiments.Figure7Baselines(500) {
					if r.Label == name {
						cps = r.ConnsPerSec
					}
				}
			}
			b.ReportMetric(cps, "conns/sec")
		})
	}
}

// BenchmarkFig7ThroughputParallel is the multicore companion to
// BenchmarkFig7Throughput: the echo service is replicated across one worker
// process per available core (round-robin user sharding, sessions pinned),
// and b.RunParallel drives one client per core. The shards sub-dimension
// compares the trusted services (ok-demux, netd, ok-dbproxy) as one event
// loop each (shards=1, the paper's architecture) against one loop per core
// (shards=N) — the headline shards=1 vs N number in the BENCH_pr*.json
// trajectory. On ≥4 cores the fully sharded stack should deliver well over
// 1.5× the serial figure, since neither the kernel monitor nor any single
// trusted event loop serializes the request stream. The burst sub-dimension
// compares the event loops' adaptive AIMD dispatch cap (the default)
// against the pre-adaptive fixed-64 cap: adaptive must not regress, and
// allocs/op across both quantify the Delivery.Release payload recycling.
func BenchmarkFig7ThroughputParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	shardCounts := []int{1, workers}
	if workers == 1 {
		// One core: still exercise the sharded configuration (2 loops) so
		// the comparison exists everywhere.
		shardCounts = []int{1, 2}
	}
	bursts := []struct {
		name  string
		fixed int
	}{{"adaptive", 0}, {"fixed64", 64}}
	for _, shards := range shardCounts {
		for _, burst := range bursts {
			b.Run(fmt.Sprintf("shards=%d/burst=%s", shards, burst.name), func(b *testing.B) {
				echo := func(c *okws.Ctx, req *httpmsg.Request) *httpmsg.Response {
					n := 11
					fmt.Sscanf(req.Query["n"], "%d", &n)
					return &httpmsg.Response{Status: 200, Body: make([]byte, n)}
				}
				srv, err := okws.Launch(okws.Config{
					Seed:       42,
					Shards:     shards,
					FixedBurst: burst.fixed,
					Services:   []okws.Service{{Name: "echo", Handler: echo, Replicas: workers}},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Stop()
				// One user per client goroutine (plus slack) so concurrent
				// requests never contend for the same session's event process.
				users := make([]struct{ user, pass string }, 4*workers)
				for i := range users {
					users[i].user = fmt.Sprintf("pu%04d", i)
					users[i].pass = fmt.Sprintf("pp%04d", i)
					if err := srv.AddUser(users[i].user, users[i].pass, fmt.Sprintf("%d", 20000+i)); err != nil {
						b.Fatal(err)
					}
				}
				// Warm the stack before the clock starts: one request per
				// user establishes every session (Figure 7 measures CACHED
				// sessions) and pulls first-connection costs — logins,
				// handle allocation, label-cache fills, lazy runtime growth
				// — out of the timed region, so the burst=adaptive/fixed64
				// sub-benchmarks compare loop policy rather than process
				// warmup order.
				for _, u := range users {
					resp, err := workload.Get(srv.Network(), 80, u.user, u.pass, "/echo?n=11")
					if err != nil || resp.Status != 200 {
						b.Fatalf("warmup for %s: %+v %v", u.user, resp, err)
					}
				}
				var nextUser, failures atomic.Uint64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					u := users[int(nextUser.Add(1))%len(users)]
					for pb.Next() {
						resp, err := workload.Get(srv.Network(), 80, u.user, u.pass, "/echo?n=11")
						if err != nil || resp.Status != 200 {
							failures.Add(1)
						}
					}
				})
				b.StopTimer()
				if n := failures.Load(); n > 0 {
					b.Fatalf("%d failed connections", n)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "conns/sec")
				b.ReportMetric(float64(workers), "workers")
				b.ReportMetric(float64(shards), "shards")
			})
		}
	}
}

// BenchmarkFig7TransportAB prices the real-socket front ends against the
// simulated wire they plug in beside: the same Figure 7 echo workload (64
// users × 4 keep-alive requests, request concurrency 16) is driven over
// the in-memory Network, over loopback TCP through the goroutine-pair
// engine, and — on Linux — over the same socket through the epoll poller,
// against identically provisioned stacks that all stay up for the whole
// run. The legs alternate in short segments inside one window, so machine
// drift lands on every transport. The tcp figures are the honest ones for
// any real-deployment claim: simulated÷tcp is the price of syscalls and
// loopback traversal, pair÷poller the price of the two-goroutines-per-
// connection socket path specifically.
func BenchmarkFig7TransportAB(b *testing.B) {
	var row experiments.Fig7ABRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.Figure7TransportAB(64)
		if err != nil {
			b.Fatal(err)
		}
		if row.Simulated.Errors > 0 || row.TCP.Errors > 0 || row.Poller.Errors > 0 {
			b.Fatalf("errors: simulated %d, tcp-pair %d, tcp-poller %d",
				row.Simulated.Errors, row.TCP.Errors, row.Poller.Errors)
		}
	}
	b.ReportMetric(row.Simulated.ConnsPerSec, "conns/sec_simulated")
	b.ReportMetric(row.TCP.ConnsPerSec, "conns/sec_tcp_pair")
	if netd.PollerAvailable() {
		b.ReportMetric(row.Poller.ConnsPerSec, "conns/sec_tcp_poller")
	}
}

// BenchmarkDeliveryLifecycle isolates the Delivery.Release payload
// recycling the trusted event loops ride on: one sender spraying a port,
// the receiver either releasing each delivery (the evloop discipline —
// the payload buffer circulates through the kernel pool) or dropping it
// unreleased (the pre-lifecycle behaviour — every send allocates a fresh
// copy). The allocs/op delta is the per-delivery payload allocation the
// lifecycle eliminates.
func BenchmarkDeliveryLifecycle(b *testing.B) {
	for _, release := range []bool{false, true} {
		name := "no-release"
		if release {
			name = "release"
		}
		b.Run(name, func(b *testing.B) {
			sys := kernel.NewSystem(kernel.WithSeed(7))
			rx := sys.NewProcess("rx")
			inbox := rx.Open(nil)
			if err := inbox.SetLabel(label.Empty(label.L3)); err != nil {
				b.Fatal(err)
			}
			tx := sys.NewProcess("tx")
			out := tx.Port(inbox.Handle())
			payload := make([]byte, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := out.Send(payload, nil); err != nil {
					b.Fatal(err)
				}
				d, err := rx.TryRecv()
				if err != nil || d == nil {
					b.Fatalf("lost delivery: %v %v", d, err)
				}
				if release {
					d.Release()
				}
			}
		})
	}
}

// BenchmarkSendBatch measures the amortization the batched-send syscall
// buys on the sender side: per-message cost of enqueuing b.N messages to
// one port in batches of 1, 8 and 64. One sender-side label check, one port
// lookup, one CAS and at most one receiver wakeup per batch — so ns/msg
// falls as the batch grows. The queue is drained off-clock whenever it
// fills, so the metric is the send syscall path alone.
func BenchmarkSendBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			const backlog = 1 << 14
			sys := kernel.NewSystem(kernel.WithSeed(1), kernel.WithQueueLimit(backlog+64))
			recv := sys.NewProcess("rx")
			port := recv.Open(nil).Handle()
			if err := recv.SetPortLabel(port, label.Empty(label.L3)); err != nil {
				b.Fatal(err)
			}
			sender := sys.NewProcess("tx")
			payload := make([]byte, 16)
			entries := make([]kernel.BatchEntry, batch)
			for i := range entries {
				entries[i] = kernel.BatchEntry{Data: payload}
			}
			drain := func() {
				for {
					d, err := recv.TryRecv()
					if err != nil {
						b.Fatal(err)
					}
					if d == nil {
						return
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			sent := 0
			for i := 0; i < b.N; i += batch {
				if err := sender.Port(port).SendBatch(entries); err != nil {
					b.Fatal(err)
				}
				sent += batch
				if recv.QueueLen() >= backlog {
					b.StopTimer()
					drain()
					b.StartTimer()
				}
			}
			b.StopTimer()
			drain()
			// Divide by messages actually sent: the loop rounds b.N up to a
			// whole number of batches, which matters at small -benchtime.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(sent), "ns/msg")
			recv.Exit()
		})
	}
}

// BenchmarkPortSend measures the cached-route fast path: one sender
// spraying a port through a bound Port endpoint (vnode resolved once)
// versus the v1 handle-based Process.Send (handle-table shard lookup per
// call). The two variants alternate in short segments inside ONE bench
// window — not separate sub-benchmarks — so frequency scaling, GC
// pacing, and background load hit both sides equally; each side's rate is
// reported from its own accumulated clock. The queue is drained
// off-clock, so the metrics isolate the send syscall.
func BenchmarkPortSend(b *testing.B) {
	const backlog = 1 << 14
	// At least four alternations per side whatever b.N is, capped so long
	// runs still swap often enough to share machine drift.
	segment := b.N / 8
	if segment > 256 {
		segment = 256
	}
	if segment < 1 {
		segment = 1
	}
	sys := kernel.NewSystem(kernel.WithSeed(3), kernel.WithQueueLimit(backlog+64))
	recv := sys.NewProcess("rx")
	inbox := recv.Open(nil)
	if err := inbox.SetLabel(label.Empty(label.L3)); err != nil {
		b.Fatal(err)
	}
	sender := sys.NewProcess("tx")
	out := sender.Port(inbox.Handle())
	payload := make([]byte, 16)
	drain := func() {
		for {
			d, err := recv.TryRecv()
			if err != nil {
				b.Fatal(err)
			}
			if d == nil {
				return
			}
		}
	}
	var (
		endpointNs, handleNs time.Duration
		endpointN, handleN   int
	)
	cached := false
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := segment
		if rest := b.N - done; rest < n {
			n = rest
		}
		t0 := time.Now()
		if cached {
			for i := 0; i < n; i++ {
				if err := out.Send(payload, nil); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if err := sender.Port(inbox.Handle()).Send(payload, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
		seg := time.Since(t0)
		if cached {
			endpointNs += seg
			endpointN += n
		} else {
			handleNs += seg
			handleN += n
		}
		cached = !cached
		done += n
		if recv.QueueLen() >= backlog {
			b.StopTimer()
			drain()
			b.StartTimer()
		}
	}
	b.StopTimer()
	drain()
	recv.Exit()
	if endpointN > 0 {
		b.ReportMetric(float64(endpointNs.Nanoseconds())/float64(endpointN), "ns/op_endpoint")
	}
	if handleN > 0 {
		b.ReportMetric(float64(handleNs.Nanoseconds())/float64(handleN), "ns/op_handle")
	}
}

// BenchmarkFig8Latency reproduces the Figure 8 table: median and 90th
// percentile latency at client concurrency 4.
func BenchmarkFig8Latency(b *testing.B) {
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8(400, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Median, "median_µs_"+sanitize(r.Server))
		b.ReportMetric(r.P90, "p90_µs_"+sanitize(r.Server))
	}
}

// BenchmarkFig9LabelCost reproduces Figure 9: per-component
// Kcycles/connection as cached sessions grow.
func BenchmarkFig9LabelCost(b *testing.B) {
	for _, n := range []int{1, 200, 1000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			var row experiments.Fig9Row
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Figure9([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			for _, c := range stats.Categories() {
				b.ReportMetric(row.Kcycles[c], "Kcyc_"+sanitize(c.String()))
			}
			b.ReportMetric(row.Total, "Kcyc_total")
		})
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkLoginPath measures one idd login round trip in its three regimes:
//
//   - cold: every attempt misses the identity cache (CacheCap 1, users
//     cycled), paying the ok-dbproxy round trip plus the Argon2id verify;
//   - cached: one user logging in repeatedly — the hash is verified locally
//     against the cached entry, no database traffic at all;
//   - backedoff: a locked-out username under a wrong-password flood — idd
//     does no verification work and defers/drops the verdicts, so this
//     bounds what a credential-stuffing attacker can make idd spend.
//
// The cached÷cold and backedoff÷cached ratios are the figure of merit, not
// the absolute numbers.
func BenchmarkLoginPath(b *testing.B) {
	const userCount = 256
	boot := func(b *testing.B, cacheCap int, ladder []idd.BackoffRung) (*kernel.System, *idd.Idd, func()) {
		sys := kernel.NewSystem(kernel.WithSeed(42))
		proxy := dbproxy.New(sys, db.Open())
		iddSrv := idd.NewOpts(sys, proxy, idd.Options{CacheCap: cacheCap, Ladder: ladder})
		go proxy.Run()
		go iddSrv.Run()
		admin := sys.NewProcess("bench-admin")
		reply := admin.Open(nil)
		adminPort, _ := sys.Env(idd.EnvAdminPort)
		for i := 0; i < userCount; i++ {
			user := fmt.Sprintf("lu%04d", i)
			if err := idd.AddUser(admin.Port(adminPort), user, "pw-"+user, fmt.Sprintf("%d", 30000+i), reply.Handle()); err != nil {
				b.Fatal(err)
			}
			d, err := reply.Recv(context.Background())
			if err != nil || d == nil {
				b.Fatalf("add user: %v", err)
			}
			ok := idd.ParseAddUserReply(d)
			d.Release()
			if !ok {
				b.Fatalf("add %s rejected", user)
			}
		}
		return sys, iddSrv, func() { iddSrv.Stop(); proxy.Stop() }
	}
	login := func(b *testing.B, sys *kernel.System, client *kernel.Process, reply *kernel.Port, tok uint64, user, pass string, wantOK bool) {
		port, _ := sys.Env(idd.EnvLoginPort)
		if err := idd.Login(client.Port(port), tok, user, pass, reply.Handle()); err != nil {
			b.Fatal(err)
		}
		for {
			d, err := reply.Recv(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			_, gotTok, ok := idd.ParseLoginReply(d)
			d.Release()
			if gotTok != tok {
				continue // stale deferred verdict from an earlier lockout
			}
			if ok != wantOK {
				b.Fatalf("login %s: ok=%v, want %v", user, ok, wantOK)
			}
			return
		}
	}

	b.Run("cold", func(b *testing.B) {
		// CacheCap 1 with cycled users: every login is a cache miss.
		sys, _, stop := boot(b, 1, []idd.BackoffRung{})
		defer stop()
		client := sys.NewProcess("bench-client")
		reply := client.Open(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			user := fmt.Sprintf("lu%04d", i%userCount)
			login(b, sys, client, reply, uint64(i+1), user, "pw-"+user, true)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logins/sec")
	})

	b.Run("cached", func(b *testing.B) {
		sys, _, stop := boot(b, 0, []idd.BackoffRung{})
		defer stop()
		client := sys.NewProcess("bench-client")
		reply := client.Open(nil)
		login(b, sys, client, reply, 1, "lu0000", "pw-lu0000", true) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			login(b, sys, client, reply, uint64(i+2), "lu0000", "pw-lu0000", true)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logins/sec")
	})

	b.Run("backedoff", func(b *testing.B) {
		// Lock lu0001 out far past the benchmark's horizon, then flood it
		// with wrong passwords: each attempt is deferred or dropped without
		// any hashing. A cached good login of ANOTHER user every few
		// iterations forces a full round trip through the same shard, so the
		// loop measures processed sends rather than a growing mailbox.
		sys, _, stop := boot(b, 0, []idd.BackoffRung{{Fails: 2, Delay: time.Hour}})
		defer stop()
		client := sys.NewProcess("bench-client")
		reply := client.Open(nil)
		login(b, sys, client, reply, 1, "lu0000", "pw-lu0000", true) // warm the sync user
		// Climb to the rung: these two failures still get immediate verdicts
		// (the lockout arms ON the second failure, so only later attempts
		// are deferred).
		for i := 0; i < 2; i++ {
			login(b, sys, client, reply, uint64(i+2), "lu0001", "WRONG", false)
		}
		port, _ := sys.Env(idd.EnvLoginPort)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := idd.Login(client.Port(port), uint64(i+10), "lu0001", "WRONG", reply.Handle()); err != nil {
				b.Fatal(err)
			}
			if i%16 == 15 {
				login(b, sys, client, reply, uint64(b.N+i+10), "lu0000", "pw-lu0000", true)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logins/sec")
	})
}

// BenchmarkForkVsEventProcess quantifies §6's motivating comparison: memory
// for N isolated users under the forked-process model versus event
// processes.
func BenchmarkForkVsEventProcess(b *testing.B) {
	var row experiments.ForkVsEPRow
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ForkVsEventProcess([]int{100}, 64)
		if err != nil {
			b.Fatal(err)
		}
		row = rows[0]
	}
	b.ReportMetric(row.PagesPerForked, "pages/user_forked")
	b.ReportMetric(row.PagesPerEventPro, "pages/user_eventproc")
}
