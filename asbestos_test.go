package asbestos

import (
	"context"
	"testing"
	"time"
)

// TestFacadeLabelFlow exercises the public aliases end to end: compartment
// creation, contamination, confinement, declassification.
func TestFacadeLabelFlow(t *testing.T) {
	sys := NewSystem()
	owner := sys.NewProcess("owner")
	secret := owner.NewHandle()

	recv := sys.NewProcess("recv")
	port := recv.Open(nil).Handle()
	recv.SetPortLabel(port, EmptyLabel(L3))
	if err := owner.Port(port).Send([]byte("x"), &SendOpts{
		Contaminate: Taint(L3, secret),
		DecontRecv:  AllowRecv(L3, secret),
	}); err != nil {
		t.Fatal(err)
	}
	d, err := recv.TryRecv()
	if err != nil || d == nil {
		t.Fatal("delivery failed")
	}
	if recv.SendLabel().Get(secret) != L3 {
		t.Fatal("contamination missing")
	}

	out := sys.NewProcess("outsider")
	oPort := out.Open(nil).Handle()
	out.SetPortLabel(oPort, EmptyLabel(L3))
	recv.Port(oPort).Send([]byte("leak"), nil)
	if d, _ := out.TryRecv(); d != nil {
		t.Fatal("confinement failed through the facade")
	}
}

func TestFacadeLabelAlgebra(t *testing.T) {
	l, err := ParseLabel("{h5 *, h9 3, 1}")
	if err != nil {
		t.Fatal(err)
	}
	m := NewLabel(L2)
	j := l.Lub(m)
	if j.Get(Handle(9)) != L3 || j.Default() != L2 {
		t.Fatalf("lub = %v", j)
	}
	if !l.Glb(m).Leq(l) {
		t.Fatal("glb must lower-bound")
	}
	if VerifyLabel(L0, Handle(5)).Get(Handle(5)) != L0 {
		t.Fatal("VerifyLabel")
	}
}

// TestFacadeWebServer boots OKWS through the facade and serves a request.
func TestFacadeWebServer(t *testing.T) {
	hello := func(c *WebCtx, req *Request) *Response {
		return &Response{Status: 200, Body: []byte("hi " + c.User)}
	}
	srv, err := LaunchWeb(WebConfig{
		Seed:     1,
		Services: []WebService{{Name: "hello", Handler: hello}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := srv.AddUser("u", "p", "1"); err != nil {
		t.Fatal(err)
	}
	resp, err := HTTPGet(srv.Network(), 80, "u", "p", "/hello")
	if err != nil || resp.Status != 200 || string(resp.Body) != "hi u" {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}
}

// TestFacadePortSurface exercises the v2 endpoint exports end to end:
// Open, Port, ctx-aware Recv, Mailbox.Drain and Select.
func TestFacadePortSurface(t *testing.T) {
	sys := NewSystem(WithSeed(5))
	rx := sys.NewProcess("rx")
	a := rx.Open(nil)
	a.SetLabel(EmptyLabel(L3))
	b := rx.Open(nil)
	b.SetLabel(EmptyLabel(L3))
	tx := sys.NewProcess("tx")

	out := tx.Port(a.Handle())
	if err := out.Send([]byte("one"), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d, err := a.Recv(ctx)
	if err != nil || string(d.Data) != "one" {
		t.Fatalf("Recv = %v %v", d, err)
	}

	tx.Port(b.Handle()).Send([]byte("two"), nil)
	d, from, err := Select(ctx, a, b)
	if err != nil || from != b || string(d.Data) != "two" {
		t.Fatalf("Select = %v %v %v", d, from, err)
	}

	out.SendBatch([]BatchEntry{{Data: []byte("x")}, {Data: []byte("y")}})
	var burst []string
	for d := range rx.Mailbox(a).Drain() {
		burst = append(burst, string(d.Data))
	}
	if len(burst) != 2 || burst[0] != "x" || burst[1] != "y" {
		t.Fatalf("Drain = %v", burst)
	}

	expired, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, err := a.Recv(expired); err == nil {
		t.Fatal("expired Recv must fail")
	}
}
