package asbestos

import (
	"testing"

	"asbestos/internal/httpmsg"
	"asbestos/internal/workload"
)

// TestFacadeLabelFlow exercises the public aliases end to end: compartment
// creation, contamination, confinement, declassification.
func TestFacadeLabelFlow(t *testing.T) {
	sys := NewSystem()
	owner := sys.NewProcess("owner")
	secret := owner.NewHandle()

	recv := sys.NewProcess("recv")
	port := recv.NewPort(nil)
	recv.SetPortLabel(port, EmptyLabel(L3))
	if err := owner.Send(port, []byte("x"), &SendOpts{
		Contaminate: Taint(L3, secret),
		DecontRecv:  AllowRecv(L3, secret),
	}); err != nil {
		t.Fatal(err)
	}
	d, err := recv.TryRecv()
	if err != nil || d == nil {
		t.Fatal("delivery failed")
	}
	if recv.SendLabel().Get(secret) != L3 {
		t.Fatal("contamination missing")
	}

	out := sys.NewProcess("outsider")
	oPort := out.NewPort(nil)
	out.SetPortLabel(oPort, EmptyLabel(L3))
	recv.Send(oPort, []byte("leak"), nil)
	if d, _ := out.TryRecv(); d != nil {
		t.Fatal("confinement failed through the facade")
	}
}

func TestFacadeLabelAlgebra(t *testing.T) {
	l, err := ParseLabel("{h5 *, h9 3, 1}")
	if err != nil {
		t.Fatal(err)
	}
	m := NewLabel(L2)
	j := l.Lub(m)
	if j.Get(Handle(9)) != L3 || j.Default() != L2 {
		t.Fatalf("lub = %v", j)
	}
	if !l.Glb(m).Leq(l) {
		t.Fatal("glb must lower-bound")
	}
	if VerifyLabel(L0, Handle(5)).Get(Handle(5)) != L0 {
		t.Fatal("VerifyLabel")
	}
}

// TestFacadeWebServer boots OKWS through the facade and serves a request.
func TestFacadeWebServer(t *testing.T) {
	hello := func(c *WebCtx, req *httpmsg.Request) *httpmsg.Response {
		return &httpmsg.Response{Status: 200, Body: []byte("hi " + c.User)}
	}
	srv, err := LaunchWeb(WebConfig{
		Seed:     1,
		Services: []WebService{{Name: "hello", Handler: hello}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := srv.AddUser("u", "p", "1"); err != nil {
		t.Fatal(err)
	}
	resp, err := workload.Get(srv.Network(), 80, "u", "p", "/hello")
	if err != nil || resp.Status != 200 || string(resp.Body) != "hi u" {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}
}
