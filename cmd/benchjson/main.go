// Command benchjson converts `go test -bench` output into a JSON document,
// so CI can archive one machine-readable benchmark snapshot per PR (the
// BENCH_pr*.json perf trajectory).
//
// Usage:
//
//	go test -bench ... | benchjson -o BENCH_pr2.json
//	benchjson -o BENCH_pr2.json bench.txt
//
// Only benchmark result lines are parsed; everything else (goos/pkg
// headers, PASS/ok trailers) is ignored. Each result line
//
//	BenchmarkFoo/bar-8   1000   52646 ns/op   18995 conns/sec
//
// becomes {"name": "Foo/bar-8", "iterations": 1000,
// "metrics": {"ns/op": 52646, "conns/sec": 18995}}.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	GeneratedAt string   `json:"generated_at"`
	Go          string   `json:"go,omitempty"`
	Results     []result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	d := doc{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Results: []result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Echo the stream so benchjson can sit inside a pipeline without
		// hiding the human-readable output from the CI log.
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			d.Results = append(d.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(d.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results found in input")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one "Benchmark<name> <N> <value> <unit> ..." line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
