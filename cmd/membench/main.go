// Command membench regenerates paper Figure 6: total memory used by active
// and cached Web sessions as a function of the number of sessions.
//
// Usage:
//
//	membench [-sessions 1000,2000,...] [-kb 1] [-active] [-both]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asbestos"
)

func main() {
	sessions := flag.String("sessions", "100,500,1000,2000,4000",
		"comma-separated session counts")
	kb := flag.Int("kb", 1, "session payload size in KB")
	active := flag.Bool("active", false, "measure active (never-cleaned) sessions only")
	both := flag.Bool("both", true, "measure both cached and active variants")
	flag.Parse()

	counts, err := parseInts(*sessions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "membench:", err)
		os.Exit(1)
	}

	variants := []bool{false, true}
	if !*both {
		variants = []bool{*active}
	}

	fmt.Println("Figure 6: memory used by Web sessions (paper: ~1.5 pages/cached, +8 pages/active)")
	var rows [][]string
	for _, act := range variants {
		res, err := asbestos.Figure6(counts, act, *kb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "membench:", err)
			os.Exit(1)
		}
		for _, r := range res {
			kind := "cached"
			if r.Active {
				kind = "active"
			}
			rows = append(rows, []string{
				kind,
				strconv.Itoa(r.Sessions),
				fmt.Sprintf("%.0f", r.TotalPages),
				fmt.Sprintf("%.2f", r.PagesPerSession),
			})
		}
	}
	fmt.Print(asbestos.FormatTable(
		[]string{"variant", "sessions", "total pages", "pages/session"}, rows))
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad session count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
