// Command labelcalc is an interactive calculator for the Asbestos label
// algebra (paper §5): enter labels in the paper's notation and combine them
// with the lattice operators.
//
//	> {h1 *, h2 3, 1} lub {h2 0, 2}
//	{h1 *, h2 3, 2}
//	> {h1 3, 1} leq {2}
//	false
//	> star {h1 *, h2 0, 1}
//	{h1 *, 3}
//
// Operators: lub (⊔), glb (⊓), leq (⊑), eq; unary: star (L⋆).
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"asbestos"
)

func main() {
	in := bufio.NewScanner(os.Stdin)
	fmt.Println("Asbestos label calculator — labels like {h1 *, h2 3, 1}; ops: lub glb leq eq, unary star; quit to exit")
	fmt.Print("> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == "quit" || line == "exit":
			return
		default:
			fmt.Println(eval(line))
		}
		fmt.Print("> ")
	}
}

// eval evaluates one calculator line.
func eval(line string) string {
	if rest, ok := strings.CutPrefix(line, "star "); ok {
		l, err := asbestos.ParseLabel(strings.TrimSpace(rest))
		if err != nil {
			return "error: " + err.Error()
		}
		return l.StarRestrict().String()
	}
	for _, op := range []string{" lub ", " glb ", " leq ", " eq "} {
		i := strings.Index(line, op)
		if i < 0 {
			continue
		}
		a, err := asbestos.ParseLabel(strings.TrimSpace(line[:i]))
		if err != nil {
			return "error: left label: " + err.Error()
		}
		b, err := asbestos.ParseLabel(strings.TrimSpace(line[i+len(op):]))
		if err != nil {
			return "error: right label: " + err.Error()
		}
		switch strings.TrimSpace(op) {
		case "lub":
			return a.Lub(b).String()
		case "glb":
			return a.Glb(b).String()
		case "leq":
			return fmt.Sprintf("%v", a.Leq(b))
		case "eq":
			return fmt.Sprintf("%v", a.Eq(b))
		}
	}
	// Bare label: parse and echo canonical form with size.
	l, err := asbestos.ParseLabel(line)
	if err != nil {
		return "error: " + err.Error()
	}
	return fmt.Sprintf("%s   (entries=%d, %d bytes)", l, l.Len(), l.SizeBytes())
}
