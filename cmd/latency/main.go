// Command latency regenerates paper Figure 8: median and 90th-percentile
// request latency at client concurrency 4 for Mod-Apache, Apache, and OKWS
// with 1 and N cached sessions — plus the fixed-vs-adaptive event-loop
// burst dimension (the adaptive cap must not cost latency).
//
// Usage:
//
//	latency [-conns 2000] [-okws-sessions 1000]
package main

import (
	"flag"
	"fmt"
	"os"

	"asbestos"
)

func main() {
	conns := flag.Int("conns", 2000, "connections per measurement")
	okwsSessions := flag.Int("okws-sessions", 1000, "cached sessions for the large OKWS row")
	flag.Parse()

	rows, err := asbestos.Figure8(*conns, *okwsSessions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
	burstRows, err := asbestos.Figure8Burst(*conns, *okwsSessions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(1)
	}
	rows = append(rows, burstRows...)
	fmt.Println("Figure 8: request latency at concurrency 4 (µs)")
	fmt.Println("paper: Mod-Apache 999/1015, Apache 3374/5262, OKWS@1 1875/2384, OKWS@1000 3414/6767")
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Server,
			fmt.Sprintf("%.0f", r.Median),
			fmt.Sprintf("%.0f", r.P90),
		})
	}
	fmt.Print(asbestos.FormatTable([]string{"server", "median µs", "90th pct µs"}, table))
}
