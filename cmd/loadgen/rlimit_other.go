//go:build !unix

package main

func raiseNoFile(uint64) error { return nil }
