// Command loadgen is the real-socket load generator for the TCP front end:
// the paper's "Linux HTTP client" pointed at a live OKWS stack over actual
// TCP instead of the simulated wire. It holds -conns concurrent keep-alive
// connections — ten thousand by default — and drives each through a
// login→session→query conversation, reporting connections/sec, requests/sec
// and latency percentiles.
//
// With no -addr it is self-contained: it re-executes itself with -serve as
// a child process that boots the full stack (okws.Launch + ListenTCP on a
// loopback ephemeral port) and drives that. Server and client are separate
// processes on purpose — each side of a 10k-connection run needs 10k file
// descriptors, and one process holding both ends walks into the fd limit
// at exactly peak load, where the kernel's response (accepts failing while
// established connections rot in the listen queue) is maximally confusing.
// With -addr it drives an externally running server (e.g.
// examples/webserver -listen) that serves a /store worker and knows users
// user0..userN-1 with passwords pw0.. .
//
// Usage:
//
//	loadgen                      # self-contained: 10000 conns, 3 reqs each
//	loadgen -conns 200 -reqs 2   # CI smoke scale
//	loadgen -addr host:port      # external target
//	loadgen -serve               # server half only; prints LISTENING <addr>
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registered on -pprof only; DefaultServeMux is otherwise unused
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"asbestos/internal/httpmsg"
	"asbestos/internal/idd"
	"asbestos/internal/netd"
	"asbestos/internal/okws"
	"asbestos/internal/passhash"
	"asbestos/internal/workload"
)

var (
	conns   = flag.Int("conns", 10000, "concurrent keep-alive TCP connections")
	reqs    = flag.Int("reqs", 3, "requests per connection (login + session queries)")
	users   = flag.Int("users", 100, "distinct user accounts to spread connections over")
	shards  = flag.Int("shards", 0, "event-loop shards per trusted service (0 = GOMAXPROCS)")
	addr     = flag.String("addr", "", "drive an external server instead of booting one")
	barrier  = flag.Bool("barrier", true, "hold requests until every connection is established")
	dialrate = flag.Int("dialrate", 2500, "connection ramp: dial starts per second (0 = unpaced burst)")
	inflight = flag.Int("inflight", 512, "cap on requests in flight across all connections (0 = none)")
	timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	serveFlg = flag.Bool("serve", false, "server half only: boot the stack, print LISTENING <addr>, run until stdin closes")
	poller   = flag.String("poller", "auto", "TCP engine: auto | on (epoll poller) | off (goroutine pair)")
	pprofFlg = flag.String("pprof", "", "serve net/http/pprof on this addr (server half), e.g. localhost:6060")
)

// pollerMode parses -poller.
func pollerMode() (netd.PollerMode, error) {
	switch *poller {
	case "auto", "":
		return netd.PollerAuto, nil
	case "on":
		return netd.PollerOn, nil
	case "off":
		return netd.PollerOff, nil
	}
	return 0, fmt.Errorf("bad -poller %q (want auto|on|off)", *poller)
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := raiseNoFile(uint64(*conns)*2 + 4096); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: rlimit:", err)
	}
	if *serveFlg {
		return serve()
	}

	target := *addr
	var stopChild func() error
	if target == "" {
		var err error
		target, stopChild, err = spawnServer()
		if err != nil {
			return err
		}
		fmt.Printf("booted server child on %s\n", target)
	}

	fmt.Printf("driving %d connections × %d requests at %s\n", *conns, *reqs, target)
	res := workload.RunTCP(target, workload.TCPOptions{
		Conns:       *conns,
		ReqsPerConn: *reqs,
		MaxInflight: *inflight,
		DialRate:    *dialrate,
		ReqTimeout:  *timeout,
		Barrier:     *barrier,
		HoldOpen:    true,
	}, request)
	fmt.Println(res)
	for _, e := range res.ErrSample {
		fmt.Println("  error:", e)
	}
	if stopChild != nil {
		if err := stopChild(); err != nil { // relays the server's shutdown diagnostics
			return fmt.Errorf("server child: %w", err)
		}
	}
	if res.Errors > 0 || res.BadStatus > 0 {
		return fmt.Errorf("%d errors, %d bad status", res.Errors, res.BadStatus)
	}
	return nil
}

// serve is the server half: boot the stack, announce the address on
// stdout, then hold until the parent (or operator) closes stdin; shutdown
// prints the stack's loss diagnostics so a failed run is attributable.
// While running it samples the process goroutine count and the server-held
// connection count, and at shutdown it enforces the poller transport's
// whole point: goroutines must NOT scale with connections.
func serve() error {
	if *pprofFlg != "" {
		go func() {
			if err := http.ListenAndServe(*pprofFlg, nil); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", *pprofFlg)
	}
	srv, ln, err := boot()
	if err != nil {
		return err
	}
	baseGoroutines := runtime.NumGoroutine()
	var peakG, peakConns atomic.Int64
	sampleDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleDone:
				return
			case <-tick.C:
				if g := int64(runtime.NumGoroutine()); g > peakG.Load() {
					peakG.Store(g)
				}
				if c := int64(srv.Netd.Injector().ConnCount()); c > peakConns.Load() {
					peakConns.Store(c)
				}
			}
		}
	}()
	fmt.Printf("LISTENING %s\n", ln.Addr())
	io.Copy(io.Discard, os.Stdin)
	close(sampleDone)
	if drops := srv.Sys.Drops(); drops > 0 {
		fmt.Printf("kernel drops: %d %v\n", drops, srv.Sys.DropStats())
	}
	if n := srv.Demux.ConnCount(); n > 0 {
		fmt.Printf("demux still tracks %d connections\n", n)
	}
	stranded := 0
	srv.Netd.Injector().Conns(func(c netd.WireConn) {
		if in, _ := c.BufferState(); in > 0 && stranded < 8 {
			stranded++
			fmt.Printf("  stranded: conn id %d has %d inbound bytes unread\n", c.ID(), in)
		}
	})
	srv.Stop()
	fmt.Printf("goroutines: base %d, peak %d at peak %d conns\n",
		baseGoroutines, peakG.Load(), peakConns.Load())
	mode, _ := pollerMode()
	usingPoller := netd.PollerAvailable() && mode != netd.PollerOff
	if usingPoller && peakConns.Load() >= 1000 && peakG.Load() >= peakConns.Load() {
		// The epoll transport exists so 10k connections cost O(shards)
		// goroutines; fail loudly if the 2-per-conn pattern sneaks back.
		return fmt.Errorf("goroutine budget exceeded: peak %d goroutines for %d conns under the poller transport",
			peakG.Load(), peakConns.Load())
	}
	return nil
}

// spawnServer re-executes this binary with -serve and waits for its
// LISTENING line. The returned stop closes the child's stdin (its shutdown
// signal) and waits for it to exit, relaying its diagnostics.
func spawnServer() (addr string, stop func() error, err error) {
	exe, err := os.Executable()
	if err != nil {
		return "", nil, err
	}
	args := []string{"-serve",
		"-users", fmt.Sprint(*users),
		"-shards", fmt.Sprint(*shards),
		"-poller", *poller}
	if *pprofFlg != "" {
		args = append(args, "-pprof", *pprofFlg)
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return "", nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	br := bufio.NewReader(stdout)
	line, err := br.ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, fmt.Errorf("server child died before announcing: %v", err)
	}
	addr = strings.TrimSpace(strings.TrimPrefix(line, "LISTENING"))
	if addr == strings.TrimSpace(line) {
		cmd.Process.Kill()
		cmd.Wait()
		return "", nil, fmt.Errorf("unexpected server announcement %q", line)
	}
	go io.Copy(os.Stdout, br) // relay diagnostics printed at shutdown
	stop = func() error {
		stdin.Close()
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			return err // non-zero exit = server-side invariant failed (e.g. goroutine budget)
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			<-done
			return fmt.Errorf("server child hung at shutdown")
		}
	}
	return addr, stop, nil
}

// request builds connection c's seq'th request: every connection belongs to
// one user for its whole life (login creates the session, later requests
// ride it). The first request stores a connection-unique row; later ones
// query it back by value, so every request costs one database round trip
// and one labeled result row — per-request work stays constant as the
// table grows with the connection count.
func request(c, seq int) *httpmsg.Request {
	u := c % *users
	path := fmt.Sprintf("/store?q=conn%d", c)
	if seq == 0 {
		path = fmt.Sprintf("/store?d=conn%d", c)
	}
	return &httpmsg.Request{
		Method: "GET",
		Path:   path,
		Headers: map[string]string{
			"authorization": fmt.Sprintf("user%d pw%d", u, u),
		},
	}
}

// boot launches a full OKWS stack with a /store worker and a TCP listener
// on an ephemeral loopback port. Login hashing uses the light test cost:
// the generator measures the serving path, not Argon2id throughput.
func boot() (*okws.Server, netd.TCPFrontend, error) {
	store := func(c *okws.Ctx, req *httpmsg.Request) *httpmsg.Response {
		if d, ok := req.Query["d"]; ok {
			if _, err := c.Query("INSERT INTO notes (d) VALUES (?)", d); err != nil {
				return &httpmsg.Response{Status: 500, Body: []byte(err.Error())}
			}
			return &httpmsg.Response{Status: 200, Body: []byte("stored")}
		}
		var (
			rows [][]string
			err  error
		)
		if q, ok := req.Query["q"]; ok {
			rows, err = c.Query("SELECT d FROM notes WHERE d = ?", q)
		} else {
			rows, err = c.Query("SELECT d FROM notes")
		}
		if err != nil {
			return &httpmsg.Response{Status: 500, Body: []byte(err.Error())}
		}
		var out []byte
		for _, r := range rows {
			out = append(out, r[0]...)
			out = append(out, '\n')
		}
		return &httpmsg.Response{Status: 200, Body: out}
	}

	mode, err := pollerMode()
	if err != nil {
		return nil, nil, err
	}
	srv, err := okws.Launch(okws.Config{
		Seed:       1,
		Shards:     *shards,
		Services:   []okws.Service{{Name: "store", Handler: store}},
		IddOptions: idd.Options{Hash: passhash.TestParams},
		TCP:        netd.TCPConfig{Poller: mode},
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := srv.Database.Exec("CREATE TABLE notes (d, _uid)"); err != nil {
		srv.Stop()
		return nil, nil, err
	}
	for i := 0; i < *users; i++ {
		if err := srv.AddUser(fmt.Sprintf("user%d", i), fmt.Sprintf("pw%d", i), fmt.Sprintf("%d", 1000+i)); err != nil {
			srv.Stop()
			return nil, nil, err
		}
	}
	ln, err := srv.ListenTCP("127.0.0.1:0")
	if err != nil {
		srv.Stop()
		return nil, nil, err
	}
	return srv, ln, nil
}
