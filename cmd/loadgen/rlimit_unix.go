//go:build unix

package main

import "syscall"

// raiseNoFile lifts the open-file limit so ten thousand sockets fit. A
// self-serve run holds BOTH ends of every connection in one process — 2×
// conns fds plus overhead — so the hard limit is raised too when the
// process is privileged (CAP_SYS_RESOURCE); otherwise the soft limit is
// lifted to the hard cap and the run proceeds best-effort. Running out of
// fds mid-run is nasty: accepts fail with EMFILE and the victims' sockets
// sit established-but-undrained in the listen queue until their clients
// give up.
func raiseNoFile(want uint64) error {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return err
	}
	if lim.Cur >= want {
		return nil
	}
	if lim.Max < want {
		// Try for a bigger hard limit; privileged processes can.
		try := lim
		try.Cur, try.Max = want, want
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try) == nil {
			return nil
		}
	}
	lim.Cur = want
	if lim.Cur > lim.Max {
		lim.Cur = lim.Max
	}
	return syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}
