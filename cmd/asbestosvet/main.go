// Command asbestosvet is the kernel-invariant analyzer suite: a vet tool
// (usable via `go vet -vettool=$(which asbestosvet)` or directly as
// `asbestosvet ./...`) enforcing the repo's IPC, payload-lifecycle and
// privilege contracts at compile time:
//
//	releasecheck  every received *kernel.Delivery reaches Release/Detach
//	privdrop      every star-level Grant is paired with DropPrivilege
//	retaincheck   evloop handlers don't retain the borrowed payload
//	ctxrecv       blocking receives take a cancellable context
//
// The contracts themselves are stated in the kernel and evloop package
// docs; each analyzer's Doc (see `asbestosvet help`) names its sanctioned
// escapes and waiver syntax.
package main

import (
	"asbestos/internal/analyzers/ctxrecv"
	"asbestos/internal/analyzers/privdrop"
	"asbestos/internal/analyzers/releasecheck"
	"asbestos/internal/analyzers/retaincheck"
	"asbestos/internal/analyzers/unitchecker"
)

func main() {
	unitchecker.Main(
		releasecheck.Analyzer,
		privdrop.Analyzer,
		retaincheck.Analyzer,
		ctxrecv.Analyzer,
	)
}
