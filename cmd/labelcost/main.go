// Command labelcost regenerates paper Figure 9: the average cost, in
// thousands of (nominal 2.8 GHz) CPU cycles per connection, of each system
// component as the number of cached OKWS sessions increases.
//
// Usage:
//
//	labelcost [-sessions 1,100,1000,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"asbestos"
)

func main() {
	sessions := flag.String("sessions", "1,100,1000,3000,5000,7500,10000",
		"comma-separated cached-session counts")
	flag.Parse()

	counts, err := parseInts(*sessions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "labelcost:", err)
		os.Exit(1)
	}

	rows, err := asbestos.Figure9(counts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "labelcost:", err)
		os.Exit(1)
	}
	fmt.Println("Figure 9: average Kcycles/connection by component vs cached sessions")
	fmt.Println("paper shape: OKDB and Kernel IPC grow linearly; Kernel IPC passes Network ≈3k sessions")
	fmt.Println("(this kernel memoizes ⊑/⊔/⊓/Contaminate results, flattening the label curves;")
	fmt.Println(" cachehit shows the fraction of cacheable label ops the memo absorbed)")
	header := []string{"sessions"}
	for _, c := range asbestos.Categories() {
		header = append(header, c.String())
	}
	header = append(header, "total", "cachehit", "drops")
	var table [][]string
	for _, r := range rows {
		row := []string{strconv.Itoa(r.Sessions)}
		for _, c := range asbestos.Categories() {
			row = append(row, fmt.Sprintf("%.0f", r.Kcycles[c]))
		}
		var drops uint64
		for _, n := range r.Drops {
			drops += n
		}
		row = append(row,
			fmt.Sprintf("%.0f", r.Total),
			fmt.Sprintf("%.2f", r.CacheHitRate),
			strconv.FormatUint(drops, 10))
		table = append(table, row)
	}
	fmt.Print(asbestos.FormatTable(header, table))

	// Silent drops are legal under the paper's §4 contract, but WHERE they
	// land matters: break each row down by the receiving process's port
	// class so queue pressure is attributable to a component.
	for _, r := range rows {
		if len(r.Drops) == 0 {
			continue
		}
		classes := make([]string, 0, len(r.Drops))
		for class := range r.Drops {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		fmt.Printf("drops @ %d sessions:", r.Sessions)
		for _, class := range classes {
			fmt.Printf(" %s=%d", class, r.Drops[class])
		}
		fmt.Println()
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad session count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
