// Command throughput regenerates paper Figure 7: completed connections per
// second for OKWS at various cached-session counts, compared with Apache
// (fork+exec CGI) and Mod-Apache (in-process module).
//
// Usage:
//
//	throughput [-sessions 1,100,1000,...] [-baseconns 2000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asbestos"
)

func main() {
	sessions := flag.String("sessions", "1,100,1000,3000,5000,7500,10000",
		"comma-separated cached-session counts")
	baseConns := flag.Int("baseconns", 2000, "connections per baseline run")
	workers := flag.Int("workers", 1,
		"worker replicas per service; >1 adds a multicore sweep over the sharded kernel")
	shards := flag.Int("shards", 0,
		"event loops per trusted service (demux/netd/dbproxy) for the parallel sweep; 0 = workers")
	iddShards := flag.Int("iddshards", 0,
		"event loops for idd in the parallel sweep; 0 = shards")
	flag.Parse()

	counts, err := parseInts(*sessions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}

	fmt.Println("Figure 7: throughput vs cached OKWS sessions (conns/sec)")
	fmt.Println("paper shape: Mod-Apache > OKWS@1 > Apache > OKWS@10000")
	rows, err := asbestos.Figure7OKWS(counts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "throughput:", err)
		os.Exit(1)
	}
	if *workers > 1 || *shards > 1 || *iddShards > 1 {
		n := *shards
		if n == 0 {
			n = *workers
		}
		prows, err := asbestos.Figure7OKWSIddSharded(counts, *workers, n, *iddShards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "throughput:", err)
			os.Exit(1)
		}
		rows = append(rows, prows...)
	}
	rows = append(rows, asbestos.Figure7Baselines(*baseConns)...)

	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Label,
			fmt.Sprintf("%.0f", r.ConnsPerSec),
			strconv.Itoa(r.Errors),
		})
	}
	fmt.Print(asbestos.FormatTable([]string{"server", "conns/sec", "errors"}, table))
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad session count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
