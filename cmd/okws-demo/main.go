// Command okws-demo boots the full OKWS stack (Figure 1) with three
// services — a session store, a per-user notes database, and a declassifier
// — provisions two users, and narrates a sequence of requests that
// demonstrate kernel-enforced user isolation.
package main

import (
	"fmt"
	"os"

	"asbestos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "okws-demo:", err)
		os.Exit(1)
	}
}

func run() error {
	store := func(c *asbestos.WebCtx, req *asbestos.Request) *asbestos.Response {
		prev := c.SessionLoad()
		if d, ok := req.Query["d"]; ok {
			c.SessionStore([]byte(d))
		}
		return &asbestos.Response{Status: 200, Body: prev}
	}
	notes := func(c *asbestos.WebCtx, req *asbestos.Request) *asbestos.Response {
		if d, ok := req.Query["add"]; ok {
			if _, err := c.Query("INSERT INTO notes (text) VALUES (?)", d); err != nil {
				return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
			}
			return &asbestos.Response{Status: 200}
		}
		rows, err := c.Query("SELECT text FROM notes")
		if err != nil {
			return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
		}
		var out []byte
		for _, r := range rows {
			out = append(out, r[0]...)
			out = append(out, '\n')
		}
		return &asbestos.Response{Status: 200, Body: out}
	}
	publish := func(c *asbestos.WebCtx, req *asbestos.Request) *asbestos.Response {
		if _, err := c.Declassify("UPDATE notes SET text = ? WHERE text = ?",
			req.Query["t"], req.Query["t"]); err != nil {
			return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
		}
		return &asbestos.Response{Status: 200}
	}

	srv, err := asbestos.LaunchWeb(asbestos.WebConfig{
		Seed: 2005,
		Services: []asbestos.WebService{
			{Name: "store", Handler: store},
			{Name: "notes", Handler: notes},
			{Name: "publish", Handler: publish, Declassifier: true},
		},
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	srv.Database.Exec("CREATE TABLE notes (text, _uid)")

	for _, u := range [][3]string{{"alice", "pw-a", "1"}, {"bob", "pw-b", "2"}} {
		if err := srv.AddUser(u[0], u[1], u[2]); err != nil {
			return err
		}
	}
	fmt.Println("OKWS on Asbestos: netd, ok-demux, idd, ok-dbproxy and 3 workers running")
	fmt.Println()

	step := func(desc, user, pass, path string) (*asbestos.Response, error) {
		resp, err := asbestos.HTTPGet(srv.Network(), 80, user, pass, path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", desc, err)
		}
		fmt.Printf("%-58s -> %d %q\n", desc+" ["+user+" "+path+"]", resp.Status, resp.Body)
		return resp, nil
	}

	if _, err := step("alice stores session data", "alice", "pw-a", "/store?d=hello-from-alice"); err != nil {
		return err
	}
	if _, err := step("alice reads it back on a NEW connection", "alice", "pw-a", "/store"); err != nil {
		return err
	}
	if _, err := step("bob's session is separate", "bob", "pw-b", "/store"); err != nil {
		return err
	}
	if _, err := step("alice adds a private note", "alice", "pw-a", "/notes?add=my-diary"); err != nil {
		return err
	}
	if _, err := step("bob cannot see alice's note", "bob", "pw-b", "/notes"); err != nil {
		return err
	}
	if _, err := step("alice publishes via declassifier", "alice", "pw-a", "/publish?t=my-diary"); err != nil {
		return err
	}
	if _, err := step("now bob sees the declassified note", "bob", "pw-b", "/notes"); err != nil {
		return err
	}
	if resp, _ := asbestos.HTTPGet(srv.Network(), 80, "mallory", "guess", "/notes"); resp != nil {
		fmt.Printf("%-58s -> %d\n", "mallory fails to authenticate [mallory /notes]", resp.Status)
	}

	fmt.Println()
	fmt.Printf("kernel: %d processes, %d active handles, %d messages dropped by label checks\n",
		srv.Sys.Processes(), srv.Sys.Handles(), srv.Sys.Drops())
	fmt.Println("every cross-user denial above was enforced by kernel label checks, not worker code")
	return nil
}
