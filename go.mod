module asbestos

go 1.24
