package asbestos

// The evaluation surface of the facade: the figure/table generators of the
// paper's §9 and the measurement plumbing they report through. cmd/
// binaries (throughput, latency, membench, labelcost) are thin wrappers
// over these.

import (
	"asbestos/internal/experiments"
	"asbestos/internal/stats"
)

// Figure rows, one type per figure of §9.
type (
	Fig6Row = experiments.Fig6Row
	Fig7Row = experiments.Fig7Row
	Fig8Row = experiments.Fig8Row
	Fig9Row = experiments.Fig9Row
)

// Figure6 measures memory per cached/active session; Figure7OKWS and
// Figure7OKWSParallel measure throughput (single-loop versus replicated
// workers + sharded trusted services); Figure7OKWSSharded varies the shard
// count independently of the replica count; Figure7OKWSIddSharded
// additionally pins idd's shard count; Figure7Baselines the Apache
// models; Figure8 the latency table; Figure8Burst the same measurement
// under adaptive vs fixed event-loop burst caps; Figure9 per-component
// Kcycles/connection.
var (
	Figure6               = experiments.Figure6
	Figure7OKWS           = experiments.Figure7OKWS
	Figure7OKWSParallel   = experiments.Figure7OKWSParallel
	Figure7OKWSSharded    = experiments.Figure7OKWSSharded
	Figure7OKWSIddSharded = experiments.Figure7OKWSIddSharded
	Figure7Baselines      = experiments.Figure7Baselines
	Figure8               = experiments.Figure8
	Figure8Burst          = experiments.Figure8Burst
	Figure9               = experiments.Figure9
)

// DefaultSessions is the paper's Figure 7/9 x-axis.
var DefaultSessions = experiments.DefaultSessions

// Profiler attributes measured time to the paper's five components;
// Category names one of them.
type (
	Profiler = stats.Profiler
	Category = stats.Category
)

// NewProfiler creates an empty profiler (pass via WithProfiler or
// WebConfig.Profiler).
var NewProfiler = stats.NewProfiler

// Categories lists the report categories in display order.
var Categories = stats.Categories

// FormatTable renders rows as the aligned text table the cmd/ binaries
// print.
var FormatTable = stats.Table
