// Quickstart: the Asbestos label system in twenty lines of flow.
//
// Creates a kernel, two processes and a compartment; shows contamination
// tracking, the transitive confinement of tainted data, and decentralized
// declassification — the core of paper §5.
package main

import (
	"fmt"

	"asbestos/internal/kernel"
	"asbestos/internal/label"
)

func main() {
	sys := kernel.NewSystem(kernel.WithSeed(1))

	// Alice owns a secret compartment: she gets ⋆ (declassification
	// privilege) for the new handle.
	alice := sys.NewProcess("alice")
	secret := alice.NewHandle()
	fmt.Printf("alice's send label:   %v\n", alice.SendLabel())

	// Bob will receive alice's secret: alice raises his clearance, then
	// sends data contaminated with {secret 3}.
	bob := sys.NewProcess("bob")
	bobPort := bob.NewPort(nil)
	bob.SetPortLabel(bobPort, label.Empty(label.L3))
	alice.Send(bobPort, []byte("the plans"), &kernel.SendOpts{
		Contaminate: kernel.Taint(label.L3, secret),
		DecontRecv:  kernel.AllowRecv(label.L3, secret),
	})
	d, _ := bob.TryRecv()
	fmt.Printf("bob received:         %q\n", d.Data)
	fmt.Printf("bob's send label:     %v  <- tainted by the kernel\n", bob.SendLabel())

	// Carol is an ordinary process. Tainted bob cannot reach her: the
	// kernel silently drops the message (unreliable send, §4).
	carol := sys.NewProcess("carol")
	carolPort := carol.NewPort(nil)
	carol.SetPortLabel(carolPort, label.Empty(label.L3))
	bob.Send(carolPort, []byte("leaked plans"), nil)
	if d, _ := carol.TryRecv(); d == nil {
		fmt.Println("bob -> carol:         DROPPED (information flow blocked)")
	}

	// Alice, holding ⋆, can declassify: she forwards the data untainted.
	alice.Send(carolPort, []byte("sanitized plans"), nil)
	if d, _ := carol.TryRecv(); d != nil {
		fmt.Printf("alice -> carol:       %q (owner declassifies)\n", d.Data)
	}
	fmt.Printf("kernel drop counter:  %d\n", sys.Drops())
}
