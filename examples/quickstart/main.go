// Quickstart: the Asbestos label system in twenty lines of flow.
//
// Creates a kernel, two processes and a compartment; shows the Port
// endpoint API (owned receive ports, bound send endpoints, context-aware
// receives), contamination tracking, the transitive confinement of tainted
// data, and decentralized declassification — the core of paper §5.
package main

import (
	"context"
	"fmt"
	"time"

	"asbestos"
)

func main() {
	sys := asbestos.NewSystem(asbestos.WithSeed(1))

	// Alice owns a secret compartment: she gets ⋆ (declassification
	// privilege) for the new handle.
	alice := sys.NewProcess("alice")
	secret := alice.NewHandle()
	fmt.Printf("alice's send label:   %v\n", alice.SendLabel())

	// Bob opens a port — Open returns the owning endpoint: he receives on
	// it, alice binds its handle as her send endpoint.
	bob := sys.NewProcess("bob")
	inbox := bob.Open(nil)
	inbox.SetLabel(asbestos.EmptyLabel(asbestos.L3))

	// Alice raises bob's clearance and sends data contaminated with
	// {secret 3} through her endpoint.
	toBob := alice.Port(inbox.Handle())
	toBob.Send([]byte("the plans"), &asbestos.SendOpts{
		Contaminate: asbestos.Taint(asbestos.L3, secret),
		DecontRecv:  asbestos.AllowRecv(asbestos.L3, secret),
	})

	// Receives are context-aware: deadlines and cancellation, no spinning.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d, _ := inbox.Recv(ctx)
	fmt.Printf("bob received:         %q\n", d.Data)
	d.Release() // deliveries borrow a pooled buffer: release when done
	fmt.Printf("bob's send label:     %v  <- tainted by the kernel\n", bob.SendLabel())

	// Carol is an ordinary process. Tainted bob cannot reach her: the
	// kernel silently drops the message (unreliable send, §4).
	carol := sys.NewProcess("carol")
	cInbox := carol.Open(nil)
	cInbox.SetLabel(asbestos.EmptyLabel(asbestos.L3))
	bob.Port(cInbox.Handle()).Send([]byte("leaked plans"), nil)
	if d, _ := cInbox.TryRecv(); d == nil {
		fmt.Println("bob -> carol:         DROPPED (information flow blocked)")
	} else {
		d.Release()
	}

	// Alice, holding ⋆, can declassify: she forwards the data untainted.
	alice.Port(cInbox.Handle()).Send([]byte("sanitized plans"), nil)
	if d, _ := cInbox.TryRecv(); d != nil {
		fmt.Printf("alice -> carol:       %q (owner declassifies)\n", d.Data)
		d.Release()
	}
	fmt.Printf("kernel drop counter:  %d\n", sys.Drops())
}
