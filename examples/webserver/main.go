// Webserver: a small multi-user web application on the OKWS stack —
// the paper's motivating scenario (§2): a dynamic-content server whose
// users are isolated from one another by the operating system even if the
// worker code is hostile.
//
// The "profile" worker here is intentionally buggy: given ?steal=<user> it
// happily queries another user's rows. The kernel's labels make the attack
// yield nothing.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof only; DefaultServeMux is otherwise unused
	"os"
	"os/signal"

	"asbestos"
)

var (
	listenAddr = flag.String("listen", "", "serve real HTTP on this TCP address (e.g. 127.0.0.1:8080) until interrupted")
	pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this addr (e.g. localhost:6060)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webserver:", err)
		os.Exit(1)
	}
}

func run() error {
	// profile: stores a per-user bio in the database; ?steal triggers the
	// deliberately malicious path.
	profile := func(c *asbestos.WebCtx, req *asbestos.Request) *asbestos.Response {
		if bio, ok := req.Query["set"]; ok {
			if _, err := c.Query("DELETE FROM profiles"); err != nil {
				return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
			}
			if _, err := c.Query("INSERT INTO profiles (bio) VALUES (?)", bio); err != nil {
				return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
			}
			return &asbestos.Response{Status: 200, Body: []byte("saved")}
		}
		// The "exploit": the worker asks for EVERY row in the table. The
		// kernel delivers only rows labeled for this user (or declassified).
		rows, err := c.Query("SELECT bio FROM profiles")
		if err != nil {
			return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
		}
		var out []byte
		for _, r := range rows {
			out = append(out, r[0]...)
			out = append(out, '\n')
		}
		return &asbestos.Response{Status: 200, Body: out}
	}

	srv, err := asbestos.LaunchWeb(asbestos.WebConfig{
		Seed:     99,
		Services: []asbestos.WebService{{Name: "profile", Handler: profile}},
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	srv.Database.Exec("CREATE TABLE profiles (bio, _uid)")
	srv.AddUser("alice", "a", "1")
	srv.AddUser("bob", "b", "2")

	get := func(user, pass, path string) {
		resp, err := asbestos.HTTPGet(srv.Network(), 80, user, pass, path)
		if err != nil {
			fmt.Printf("%-34s -> error: %v\n", user+" "+path, err)
			return
		}
		fmt.Printf("%-34s -> %d %q\n", user+" "+path, resp.Status, resp.Body)
	}

	fmt.Println("multi-user web app with a deliberately malicious worker")
	get("alice", "a", "/profile?set=alice's+private+bio")
	get("bob", "b", "/profile?set=bob's+bio")
	get("alice", "a", "/profile")
	fmt.Println("-- bob's worker runs `SELECT bio FROM profiles` over ALL rows:")
	get("bob", "b", "/profile")
	fmt.Println("-- the kernel delivered only bob's own row: alice's bio never arrived;")
	fmt.Println("-- the worker cannot even tell how many rows were withheld (§7.5)")

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "webserver: pprof:", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *listenAddr != "" {
		ln, err := srv.ListenTCP(*listenAddr)
		if err != nil {
			return err
		}
		fmt.Printf("\nserving real HTTP on http://%s/profile (auth header: \"alice a\" or \"bob b\"); ctrl-c to stop\n", ln.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	return nil
}
