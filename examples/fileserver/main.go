// Fileserver: the multi-user labeled file server of paper §5.2–§5.4.
//
// Demonstrates the privacy policy (readers are tainted; taint confines),
// discretionary integrity (writes need a speaks-for proof), mandatory
// integrity (the proof evaporates on low-integrity input), and the
// network-exclusion policy for system files.
package main

import (
	"fmt"

	"asbestos/internal/fs"
	"asbestos/internal/kernel"
	"asbestos/internal/label"
)

func main() {
	sys := kernel.NewSystem(kernel.WithSeed(7))
	srv := fs.New(sys)
	go srv.Run()
	defer srv.Stop()

	// Two users register; each gets (uT, uG) and clearance for its own
	// taint.
	u := sys.NewProcess("u-shell")
	ur := u.NewPort(nil)
	uid, _ := fs.Register(u, srv.Port(), "u", ur)
	v := sys.NewProcess("v-shell")
	vr := v.NewPort(nil)
	fs.Register(v, srv.Port(), "v", vr)

	ownerV := label.New(label.L3, label.Entry{H: uid.UG, L: label.L0})
	fs.Create(u, srv.Port(), "/home/u/secret.txt", "u", ur, ownerV)
	u.Recv(ur)
	fs.Write(u, srv.Port(), "/home/u/secret.txt", []byte("u's diary"), ur, ownerV)
	u.Recv(ur)
	fmt.Println("u created and wrote /home/u/secret.txt (proved uG 0)")

	// v tries to read u's file: the tainted reply cannot reach v.
	fs.Read(v, srv.Port(), "/home/u/secret.txt", vr)
	if d, _ := v.TryRecv(vr); d == nil {
		fmt.Println("v's read of u's file: reply DROPPED (no clearance for u's taint)")
	}

	// v tries to overwrite it: the server demands a speaks-for proof.
	fs.Write(v, srv.Port(), "/home/u/secret.txt", []byte("defaced"), vr, label.Empty(label.L3))
	d, _ := v.Recv(vr)
	fmt.Printf("v's write without proof: accepted=%v\n", fs.ParseWriteReply(d))

	// u grants v clearance to read (decentralized: no administrator).
	clear := v.NewPort(nil)
	v.SetPortLabel(clear, label.Empty(label.L3))
	u.Send(clear, nil, &kernel.SendOpts{DecontRecv: kernel.AllowRecv(label.L3, uid.UT)})
	v.TryRecv(clear)
	fs.Read(v, srv.Port(), "/home/u/secret.txt", vr)
	d, _ = v.Recv(vr)
	data, _ := fs.ParseReadReply(d)
	fmt.Printf("after u grants clearance, v reads: %q\n", data)
	fmt.Printf("v's send label now carries the taint: %v\n", v.SendLabel())

	// But v still cannot republish: an ordinary process won't receive from
	// tainted v.
	outsider := sys.NewProcess("outsider")
	op := outsider.NewPort(nil)
	outsider.SetPortLabel(op, label.Empty(label.L3))
	v.Send(op, data, nil)
	if d, _ := outsider.TryRecv(); d == nil {
		fmt.Println("v -> outsider: DROPPED (transitive confinement)")
	}

	// System-file integrity: netd is marked sysH 2 and cannot pass the
	// V(sysH) ≤ 1 check, nor can anything it contaminated.
	srv.CreateSystemFile("/etc/motd", []byte("welcome"))
	netd := sys.NewProcess("netd")
	netd.ContaminateSelf(kernel.Taint(label.L2, srv.SystemHandle()))
	nr := netd.NewPort(nil)
	sysV := label.New(label.L3, label.Entry{H: srv.SystemHandle(), L: label.L1})
	fs.Write(netd, srv.Port(), "/etc/motd", []byte("pwned"), nr, sysV)
	if d, _ := netd.TryRecv(nr); d == nil {
		fmt.Println("network daemon's system-file write: DROPPED (mandatory integrity)")
	}
}
