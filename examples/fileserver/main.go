// Fileserver: the multi-user labeled file server of paper §5.2–§5.4.
//
// Demonstrates the privacy policy (readers are tainted; taint confines),
// discretionary integrity (writes need a speaks-for proof), mandatory
// integrity (the proof evaporates on low-integrity input), and the
// network-exclusion policy for system files — all through the asbestos
// facade's Port endpoints.
package main

import (
	"context"
	"fmt"
	"time"

	"asbestos"
)

func main() {
	// A deadline bounds every receive below: a lost reply fails the demo
	// instead of wedging it.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sys := asbestos.NewSystem(asbestos.WithSeed(7))
	srv := asbestos.NewFileServer(sys)
	go srv.Run()
	defer srv.Stop()

	// Two users register; each gets (uT, uG) and clearance for its own
	// taint. Each shell binds the published server port as its endpoint.
	u := sys.NewProcess("u-shell")
	uFS := u.Port(srv.Port())
	ur := u.Open(nil)
	uid, _ := asbestos.FileRegister(ctx, uFS, "u", ur)
	v := sys.NewProcess("v-shell")
	vFS := v.Port(srv.Port())
	vr := v.Open(nil)
	asbestos.FileRegister(ctx, vFS, "v", vr)

	ownerV := asbestos.NewLabel(asbestos.L3, asbestos.Entry{H: uid.UG, L: asbestos.L0})
	asbestos.FileCreate(uFS, "/home/u/secret.txt", "u", ur.Handle(), ownerV)
	if d, _ := ur.Recv(ctx); d != nil {
		d.Release()
	}
	asbestos.FileWrite(uFS, "/home/u/secret.txt", []byte("u's diary"), ur.Handle(), ownerV)
	if d, _ := ur.Recv(ctx); d != nil {
		d.Release()
	}
	fmt.Println("u created and wrote /home/u/secret.txt (proved uG 0)")

	// v tries to read u's file: the tainted reply cannot reach v.
	asbestos.FileRead(vFS, "/home/u/secret.txt", vr.Handle())
	if d, _ := vr.TryRecv(); d == nil {
		fmt.Println("v's read of u's file: reply DROPPED (no clearance for u's taint)")
	} else {
		d.Release()
	}

	// v tries to overwrite it: the server demands a speaks-for proof.
	asbestos.FileWrite(vFS, "/home/u/secret.txt", []byte("defaced"), vr.Handle(), asbestos.EmptyLabel(asbestos.L3))
	d, _ := vr.Recv(ctx)
	fmt.Printf("v's write without proof: accepted=%v\n", asbestos.ParseFileWriteReply(d))
	d.Release()

	// u grants v clearance to read (decentralized: no administrator).
	clear := v.Open(nil)
	clear.SetLabel(asbestos.EmptyLabel(asbestos.L3))
	u.Port(clear.Handle()).Send(nil, &asbestos.SendOpts{DecontRecv: asbestos.AllowRecv(asbestos.L3, uid.UT)})
	if d, _ := clear.TryRecv(); d != nil {
		d.Release()
	}
	asbestos.FileRead(vFS, "/home/u/secret.txt", vr.Handle())
	d, _ = vr.Recv(ctx)
	data, _ := asbestos.ParseFileReadReply(d) // copies: wire.Reader.Bytes duplicates the payload
	d.Release()
	fmt.Printf("after u grants clearance, v reads: %q\n", data)
	fmt.Printf("v's send label now carries the taint: %v\n", v.SendLabel())

	// But v still cannot republish: an ordinary process won't receive from
	// tainted v.
	outsider := sys.NewProcess("outsider")
	op := outsider.Open(nil)
	op.SetLabel(asbestos.EmptyLabel(asbestos.L3))
	v.Port(op.Handle()).Send(data, nil)
	if d, _ := op.TryRecv(); d == nil {
		fmt.Println("v -> outsider: DROPPED (transitive confinement)")
	} else {
		d.Release()
	}

	// System-file integrity: netd is marked sysH 2 and cannot pass the
	// V(sysH) ≤ 1 check, nor can anything it contaminated.
	srv.CreateSystemFile("/etc/motd", []byte("welcome"))
	netd := sys.NewProcess("netd")
	netd.ContaminateSelf(asbestos.Taint(asbestos.L2, srv.SystemHandle()))
	nr := netd.Open(nil)
	sysV := asbestos.NewLabel(asbestos.L3, asbestos.Entry{H: srv.SystemHandle(), L: asbestos.L1})
	asbestos.FileWrite(netd.Port(srv.Port()), "/etc/motd", []byte("pwned"), nr.Handle(), sysV)
	if d, _ := nr.TryRecv(); d == nil {
		fmt.Println("network daemon's system-file write: DROPPED (mandatory integrity)")
	} else {
		d.Release()
	}
}
