// Declassify: decentralized declassification (paper §5.3, §7.6).
//
// Alice's private rows are confined by her taint handle. A semi-trusted
// declassifier worker — holding her uT at ⋆, granted by ok-demux without
// involving idd — republishes selected rows for public reading. A
// compromised declassifier can overshare *alice's* data but cannot touch
// anyone else's: the example shows the blast radius staying per-user.
package main

import (
	"fmt"
	"os"

	"asbestos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "declassify:", err)
		os.Exit(1)
	}
}

func run() error {
	posts := func(c *asbestos.WebCtx, req *asbestos.Request) *asbestos.Response {
		if d, ok := req.Query["add"]; ok {
			if _, err := c.Query("INSERT INTO posts (body) VALUES (?)", d); err != nil {
				return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
			}
			return &asbestos.Response{Status: 200}
		}
		rows, err := c.Query("SELECT body FROM posts")
		if err != nil {
			return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
		}
		var out []byte
		for _, r := range rows {
			out = append(out, r[0]...)
			out = append(out, '\n')
		}
		return &asbestos.Response{Status: 200, Body: out}
	}

	// The declassifier — an over-eager one that publishes whatever the
	// request names. Compromise here leaks only the requesting user's data.
	publish := func(c *asbestos.WebCtx, req *asbestos.Request) *asbestos.Response {
		rows, err := c.Declassify("UPDATE posts SET body = ? WHERE body = ?",
			req.Query["t"], req.Query["t"])
		if err != nil {
			return &asbestos.Response{Status: 500, Body: []byte(err.Error())}
		}
		return &asbestos.Response{Status: 200, Body: []byte(fmt.Sprintf("%d rows", len(rows)))}
	}

	srv, err := asbestos.LaunchWeb(asbestos.WebConfig{
		Seed: 17,
		Services: []asbestos.WebService{
			{Name: "posts", Handler: posts},
			{Name: "publish", Handler: publish, Declassifier: true},
		},
	})
	if err != nil {
		return err
	}
	defer srv.Stop()
	srv.Database.Exec("CREATE TABLE posts (body, _uid)")
	srv.AddUser("alice", "a", "1")
	srv.AddUser("bob", "b", "2")

	get := func(user, pass, path string) *asbestos.Response {
		resp, err := asbestos.HTTPGet(srv.Network(), 80, user, pass, path)
		if err != nil {
			fmt.Printf("%-40s -> error %v\n", user+" "+path, err)
			return nil
		}
		fmt.Printf("%-40s -> %d %q\n", user+" "+path, resp.Status, resp.Body)
		return resp
	}

	get("alice", "a", "/posts?add=alice-private")
	get("alice", "a", "/posts?add=alice-public-draft")
	get("bob", "b", "/posts") // sees nothing of alice's
	get("alice", "a", "/publish?t=alice-public-draft")
	get("bob", "b", "/posts") // now sees the declassified post only
	fmt.Println("-- declassification was decentralized: only alice's declassifier ran,")
	fmt.Println("-- holding only alice's uT at ⋆; bob's data was never at risk (§7.6)")
	return nil
}
