// Capabilities: Asbestos port labels as send capabilities (paper §5.5).
//
// A freshly created port is private ({p 0} in its port label); the right to
// send to it is granted by decontaminating another process's send label
// with respect to the port handle — and, like a capability, the holder can
// re-delegate it. The example also shows the mail-reader pattern: a port
// label that blocks contamination from a compromised peer.
package main

import (
	"fmt"

	"asbestos/internal/kernel"
	"asbestos/internal/label"
)

func main() {
	sys := kernel.NewSystem(kernel.WithSeed(9))

	owner := sys.NewProcess("owner")
	service := owner.NewPort(nil) // port label {service 0, 3}: private

	// A stranger cannot send: ES(service)=1 > pR(service)=0.
	stranger := sys.NewProcess("stranger")
	stranger.Send(service, []byte("knock knock"), nil)
	if d, _ := owner.TryRecv(); d == nil {
		fmt.Println("stranger -> service: DROPPED (no capability)")
	}

	// The owner mints a capability: DS = {service ⋆, 3} sent to a friend.
	friend := sys.NewProcess("friend")
	fPort := friend.NewPort(nil)
	friend.SetPortLabel(fPort, label.Empty(label.L3))
	owner.Send(fPort, nil, &kernel.SendOpts{DecontSend: kernel.Grant(service)})
	friend.TryRecv()
	friend.Send(service, []byte("hi, it's friend"), nil)
	d, _ := owner.TryRecv()
	fmt.Printf("friend -> service: %q (capability granted)\n", d.Data)

	// Capabilities re-delegate: friend forwards the right to delegate.
	delegate := sys.NewProcess("delegate")
	dPort := delegate.NewPort(nil)
	delegate.SetPortLabel(dPort, label.Empty(label.L3))
	friend.Send(dPort, nil, &kernel.SendOpts{DecontSend: kernel.Grant(service)})
	delegate.TryRecv()
	delegate.Send(service, []byte("hello from delegate"), nil)
	d, _ = owner.TryRecv()
	fmt.Printf("delegate -> service: %q (re-delegation works)\n", d.Data)

	// The mail-reader pattern (§5.5): a port label of {2} refuses tainted
	// senders outright, keeping the receiver's labels clean.
	mail := sys.NewProcess("mail-reader")
	inbox := mail.NewPort(label.Empty(label.L2))
	mail.SetPortLabel(inbox, label.Empty(label.L2)) // open, but taint-proof

	attachment := sys.NewProcess("attachment")
	attachment.Send(inbox, []byte("clean attachment output"), nil)
	d, _ = mail.TryRecv()
	fmt.Printf("clean attachment -> inbox: %q\n", d.Data)

	tainter := sys.NewProcess("tainter")
	hT := tainter.NewHandle()
	attachment.ContaminateSelf(kernel.Taint(label.L3, hT))
	attachment.Send(inbox, []byte("now compromised"), nil)
	if d, _ := mail.TryRecv(); d == nil {
		fmt.Println("compromised attachment -> inbox: DROPPED by port label")
	}
	fmt.Printf("mail reader's send label stayed clean: %v\n", mail.SendLabel())
}
