// Capabilities: Asbestos port labels as send capabilities (paper §5.5).
//
// A freshly created port is private ({p 0} in its port label); the right to
// send to it is granted by decontaminating another process's send label
// with respect to the port handle — and, like a capability, the holder can
// re-delegate it. The example also shows the mail-reader pattern: a port
// label that blocks contamination from a compromised peer, and Select
// waiting on ports of two different processes in one call.
package main

import (
	"context"
	"fmt"
	"time"

	"asbestos"
)

func main() {
	sys := asbestos.NewSystem(asbestos.WithSeed(9))

	owner := sys.NewProcess("owner")
	service := owner.Open(nil) // port label {service 0, 3}: private

	// A stranger cannot send: ES(service)=1 > pR(service)=0.
	stranger := sys.NewProcess("stranger")
	stranger.Port(service.Handle()).Send([]byte("knock knock"), nil)
	if d, _ := service.TryRecv(); d == nil {
		fmt.Println("stranger -> service: DROPPED (no capability)")
	} else {
		d.Release() // not expected, but a received delivery is always owned
	}

	// The owner mints a capability: DS = {service ⋆, 3} sent to a friend.
	friend := sys.NewProcess("friend")
	fPort := friend.Open(nil)
	fPort.SetLabel(asbestos.EmptyLabel(asbestos.L3))
	owner.Port(fPort.Handle()).Send(nil, &asbestos.SendOpts{DecontSend: asbestos.Grant(service.Handle())})
	if d, _ := fPort.TryRecv(); d != nil {
		d.Release() // the grant rides the label; the payload pool still wants its buffer back
	}
	// The friend holds the capability now; a cached endpoint reuses the
	// resolved route for every later send.
	friendToService := friend.Port(service.Handle())
	friendToService.Send([]byte("hi, it's friend"), nil)
	d, _ := service.TryRecv()
	fmt.Printf("friend -> service: %q (capability granted)\n", d.Data)
	d.Release()

	// Capabilities re-delegate: friend forwards the right to delegate.
	delegate := sys.NewProcess("delegate")
	dPort := delegate.Open(nil)
	dPort.SetLabel(asbestos.EmptyLabel(asbestos.L3))
	friend.Port(dPort.Handle()).Send(nil, &asbestos.SendOpts{DecontSend: asbestos.Grant(service.Handle())})
	if d, _ := dPort.TryRecv(); d != nil {
		d.Release()
	}
	delegate.Port(service.Handle()).Send([]byte("hello from delegate"), nil)
	d, _ = service.TryRecv()
	fmt.Printf("delegate -> service: %q (re-delegation works)\n", d.Data)
	d.Release()

	// The mail-reader pattern (§5.5): a port label of {2} refuses tainted
	// senders outright, keeping the receiver's labels clean.
	mail := sys.NewProcess("mail-reader")
	inbox := mail.Open(asbestos.EmptyLabel(asbestos.L2))
	inbox.SetLabel(asbestos.EmptyLabel(asbestos.L2)) // open, but taint-proof

	attachment := sys.NewProcess("attachment")
	toInbox := attachment.Port(inbox.Handle())
	toInbox.Send([]byte("clean attachment output"), nil)
	d, _ = inbox.TryRecv()
	fmt.Printf("clean attachment -> inbox: %q\n", d.Data)
	d.Release()

	tainter := sys.NewProcess("tainter")
	hT := tainter.NewHandle()
	attachment.ContaminateSelf(asbestos.Taint(asbestos.L3, hT))
	toInbox.Send([]byte("now compromised"), nil)
	if d, _ := inbox.TryRecv(); d == nil {
		fmt.Println("compromised attachment -> inbox: DROPPED by port label")
	} else {
		d.Release()
	}
	fmt.Printf("mail reader's send label stayed clean: %v\n", mail.SendLabel())

	// Select watches the service port and the mail inbox — queues of two
	// different processes — in one blocking call.
	friendToService.Send([]byte("one more"), nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d, from, _ := asbestos.Select(ctx, inbox, service)
	fmt.Printf("Select woke on port %v with %q\n", from.Handle(), d.Data)
	d.Release()
}
